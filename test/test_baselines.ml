(* Cross-engine equivalence: BINARY, HYBRID, TIME and TSRJoin must all
   compute exactly the oracle's result set, on the full query pool and
   on randomized graphs. Also unit tests for the Volcano framework and
   the per-pipeline plumbing. *)

open Semantics

let window a b = Temporal.Interval.make a b

(* ---------- Volcano ---------- *)

let tuple_of_int q i =
  (* fake tuples distinguished by a bound vertex *)
  let t = Relops.Tuple.initial q in
  t.Relops.Tuple.binds.(0) <- i;
  t

let test_volcano_batches () =
  let q = Query.make ~n_vars:1 ~edges:[ (0, 0, 0) ] ~window:(window 0 1) in
  let n = (3 * Relops.Volcano.batch_size) + 17 in
  let op =
    Relops.Volcano.source (Seq.init n (tuple_of_int q))
  in
  let seen = ref 0 and max_batch = ref 0 in
  let rec drain () =
    match Relops.Volcano.next op with
    | None -> ()
    | Some batch ->
        max_batch := max !max_batch (Array.length batch);
        seen := !seen + Array.length batch;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all tuples delivered" n !seen;
  Alcotest.(check int) "batches capped at 1024" Relops.Volcano.batch_size !max_batch

let test_volcano_flat_map () =
  let q = Query.make ~n_vars:1 ~edges:[ (0, 0, 0) ] ~window:(window 0 1) in
  let op =
    Relops.Volcano.source (Seq.init 100 (tuple_of_int q))
    |> Relops.Volcano.flat_map (fun t -> [ t; t; t ])
  in
  Alcotest.(check int) "3x fanout" 300 (Relops.Volcano.count op);
  let op2 =
    Relops.Volcano.source (Seq.init 100 (tuple_of_int q))
    |> Relops.Volcano.filter_map (fun t ->
           if t.Relops.Tuple.binds.(0) mod 2 = 0 then Some t else None)
  in
  Alcotest.(check int) "filter" 50 (Relops.Volcano.count op2)

(* ---------- Tuple ---------- *)

let test_tuple_extend () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5); (1, 2, 0, 2, 8) ] in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (0, 1, 2) ] ~window:(window 0 9)
  in
  let t0 = Relops.Tuple.initial q in
  let t1 =
    Option.get (Relops.Tuple.extend q t0 ~edge_idx:0 (Tgraph.Graph.edge g 0))
  in
  Alcotest.(check int) "binds x0" 0 t1.Relops.Tuple.binds.(0);
  Alcotest.(check int) "binds x1" 1 t1.Relops.Tuple.binds.(1);
  Alcotest.(check bool) "incomplete" false (Relops.Tuple.is_complete t1);
  (* edge 1 goes 1->2, consistent with x1 = 1 *)
  let t2 =
    Option.get (Relops.Tuple.extend q t1 ~edge_idx:1 (Tgraph.Graph.edge g 1))
  in
  Alcotest.(check bool) "complete" true (Relops.Tuple.is_complete t2);
  (* inconsistent binding rejected: edge 0 as query edge 1 needs src = 1 *)
  Alcotest.(check bool) "conflict rejected" true
    (Relops.Tuple.extend q t1 ~edge_idx:1 (Tgraph.Graph.edge g 0) = None);
  (* temporal selection *)
  let sel =
    Relops.Tuple.select_temporal t2 ~ws:0 ~we:9 ~edge:(Tgraph.Graph.edge g 1)
  in
  (match sel with
  | Some t ->
      Alcotest.(check int) "life start" 2 (Temporal.Interval.ts t.Relops.Tuple.life)
  | None -> Alcotest.fail "selection dropped a valid tuple");
  Alcotest.(check bool) "window miss dropped" true
    (Relops.Tuple.select_temporal t2 ~ws:20 ~we:30 ~edge:(Tgraph.Graph.edge g 1)
    = None)

(* ---------- join orders ---------- *)

let test_binary_join_order_connected () =
  let g =
    Test_util.random_graph ~seed:3 ~n_vertices:8 ~n_edges:100 ~n_labels:4
      ~domain:50 ~max_len:10 ()
  in
  let adj = Triejoin.Adjacency.build g in
  let q =
    Pattern.instantiate (Pattern.Chain 4) ~labels:[| 0; 1; 2; 3 |]
      ~window:(window 0 49)
  in
  let order = Relops.Binary.join_order adj q in
  Alcotest.(check int) "covers all edges" 4 (List.length (List.sort_uniq compare order));
  (* each subsequent edge touches an already-bound variable *)
  let bound = Array.make (Query.n_vars q) false in
  List.iteri
    (fun i idx ->
      let e = Query.edge q idx in
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "edge %d connected" i)
          true
          (bound.(e.Query.src_var) || bound.(e.Query.dst_var));
      bound.(e.Query.src_var) <- true;
      bound.(e.Query.dst_var) <- true)
    order

let test_hybrid_var_order () =
  let g =
    Test_util.random_graph ~seed:4 ~n_vertices:8 ~n_edges:100 ~n_labels:4
      ~domain:50 ~max_len:10 ()
  in
  let adj = Triejoin.Adjacency.build g in
  let q =
    Pattern.instantiate (Pattern.Star 3) ~labels:[| 0; 1; 2 |] ~window:(window 0 49)
  in
  let order = Relops.Hybrid.var_order adj q in
  Alcotest.(check int) "all vars" 4 (List.length order);
  Alcotest.(check int) "center first" 0 (List.hd order)

(* ---------- the big one: 4 engines vs oracle ---------- *)

let check_all_engines ~msg g queries =
  let engine = Workload.Engine.prepare g in
  List.iteri
    (fun qi q ->
      let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
      Array.iter
        (fun m ->
          let actual =
            Match_result.Result_set.of_list (Workload.Engine.evaluate engine m q)
          in
          match Match_result.Result_set.diff_summary ~expected ~actual with
          | None -> ()
          | Some diff ->
              Alcotest.failf "%s: query %d, %s: %s" msg qi
                (Workload.Engine.method_name m)
                diff)
        Workload.Engine.all_methods)
    queries

let test_engines_query_pool () =
  let g =
    Test_util.random_graph ~seed:21 ~n_vertices:6 ~n_edges:90 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  check_all_engines ~msg:"pool"
    g
    (List.map Fun.id (Test_util.query_pool ~n_labels:3 ~window:(window 8 30)))

let test_engines_short_intervals () =
  let g =
    Test_util.random_graph ~seed:22 ~n_vertices:8 ~n_edges:120 ~n_labels:2
      ~domain:60 ~max_len:2 ()
  in
  check_all_engines ~msg:"short intervals" g
    (Test_util.query_pool ~n_labels:2 ~window:(window 10 45))

let test_engines_full_domain_window () =
  let g =
    Test_util.random_graph ~seed:23 ~n_vertices:5 ~n_edges:70 ~n_labels:3
      ~domain:30 ~max_len:30 ()
  in
  check_all_engines ~msg:"full window" g
    (Test_util.query_pool ~n_labels:3 ~window:(window 0 29))

let prop_engines_agree =
  QCheck.Test.make ~name:"all engines = oracle on random graphs" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:45 ~n_labels:3
          ~domain:25 ~max_len:8 ()
      in
      let engine = Workload.Engine.prepare g in
      let queries = Test_util.query_pool ~n_labels:3 ~window:(window 4 18) in
      List.for_all
        (fun q ->
          let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
          Array.for_all
            (fun m ->
              Match_result.Result_set.equal expected
                (Match_result.Result_set.of_list
                   (Workload.Engine.evaluate engine m q)))
            Workload.Engine.all_methods)
        queries)

(* ---------- budgets and accounting ---------- *)

let test_budget_truncation () =
  let g =
    Test_util.random_graph ~seed:24 ~n_vertices:4 ~n_edges:80 ~n_labels:1
      ~domain:20 ~max_len:20 ()
  in
  let engine = Workload.Engine.prepare g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 19) in
  let budget =
    { Workload.Runner.max_results_per_query = 3; max_intermediate_per_query = 1_000_000 }
  in
  let m = Workload.Runner.run_method ~budget engine Workload.Engine.Tsrjoin [ q ] in
  Alcotest.(check int) "one truncated query" 1 m.Workload.Runner.n_truncated

let test_index_sizes_positive () =
  let g =
    Test_util.random_graph ~seed:25 ~n_vertices:10 ~n_edges:200 ~n_labels:4
      ~domain:100 ~max_len:20 ()
  in
  let engine = Workload.Engine.prepare g in
  Array.iter
    (fun m ->
      Alcotest.(check bool)
        (Workload.Engine.method_name m ^ " index size positive")
        true
        (Workload.Engine.index_size_words engine m > 0))
    Workload.Engine.all_methods;
  (* TSRJoin's richer index costs more than the others, as in Table IV *)
  Alcotest.(check bool) "tsrjoin largest" true
    (Workload.Engine.index_size_words engine Workload.Engine.Tsrjoin
    >= Workload.Engine.index_size_words engine Workload.Engine.Binary)

let test_query_gen_respects_m () =
  let g =
    Test_util.random_graph ~seed:26 ~n_vertices:8 ~n_edges:150 ~n_labels:4
      ~domain:60 ~max_len:15 ()
  in
  let engine = Workload.Engine.prepare g in
  let cfg =
    {
      Workload.Query_gen.n_queries = 10;
      window_frac = 0.3;
      shape = Pattern.Star 2;
      max_results = 50;
      seed = 5;
      max_attempts = 3000;
    }
  in
  let infos = Workload.Query_gen.generate engine cfg in
  Alcotest.(check bool) "generated some" true (infos <> []);
  List.iter
    (fun info ->
      let n = info.Workload.Query_gen.result_size in
      Alcotest.(check bool) "within [1, M]" true (n >= 1 && n <= 50);
      (* the recorded size is the true size *)
      Alcotest.(check int) "size exact" n
        (Naive.count g info.Workload.Query_gen.query))
    infos

let test_query_gen_deterministic () =
  let g =
    Test_util.random_graph ~seed:27 ~n_vertices:8 ~n_edges:120 ~n_labels:4
      ~domain:60 ~max_len:15 ()
  in
  let engine = Workload.Engine.prepare g in
  let cfg =
    {
      Workload.Query_gen.n_queries = 5;
      window_frac = 0.2;
      shape = Pattern.Chain 2;
      max_results = 100;
      seed = 9;
      max_attempts = 2000;
    }
  in
  let a = Workload.Query_gen.generate engine cfg in
  let b = Workload.Query_gen.generate engine cfg in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      Alcotest.(check int) "same sizes" x.Workload.Query_gen.result_size
        y.Workload.Query_gen.result_size)
    a b

let prop_engines_agree_random_structure =
  QCheck.Test.make ~name:"all engines = oracle on random query structures"
    ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (gseed, qseed) ->
      let g =
        Test_util.random_graph ~seed:gseed ~n_vertices:5 ~n_edges:40
          ~n_labels:3 ~domain:25 ~max_len:8 ()
      in
      let engine = Workload.Engine.prepare g in
      let q =
        Testkit.random_query ~seed:qseed ~n_labels:3 ~max_edges:4
          ~window:(window 4 18)
      in
      let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
      Array.for_all
        (fun m ->
          Match_result.Result_set.equal expected
            (Match_result.Result_set.of_list
               (Workload.Engine.evaluate engine m q)))
        Workload.Engine.all_methods)

let test_suite_roundtrip () =
  let g =
    Test_util.random_graph ~seed:28 ~n_vertices:8 ~n_edges:150 ~n_labels:4
      ~domain:60 ~max_len:15 ()
  in
  let engine = Workload.Engine.prepare g in
  let cfg =
    {
      Workload.Query_gen.n_queries = 6;
      window_frac = 0.2;
      shape = Pattern.Star 2;
      max_results = 10_000;
      seed = 12;
      max_attempts = 2000;
    }
  in
  let queries =
    List.map (fun i -> i.Workload.Query_gen.query)
      (Workload.Query_gen.generate engine cfg)
    @ [
        Query.with_min_duration
          (Query.make ~n_vars:3
             ~edges:[ (0, 0, 1); (1, 1, 2) ]
             ~window:(window 5 40))
          4;
      ]
  in
  let path = Filename.temp_file "tcsq_suite" ".queries" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Suite.save g queries path;
      match Workload.Suite.load g path with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok reloaded ->
          Alcotest.(check int) "count" (List.length queries) (List.length reloaded);
          List.iteri
            (fun i (orig, re) ->
              Test_util.check_same_results
                ~msg:(Printf.sprintf "suite query %d" i)
                (Workload.Engine.evaluate engine Workload.Engine.Tsrjoin orig)
                (Workload.Engine.evaluate engine Workload.Engine.Tsrjoin re))
            (List.combine queries reloaded));
  (* malformed lines are reported with positions *)
  match Workload.Suite.of_lines g [ "MATCH (x)-[zzz]->(y) IN [0, 5]" ] with
  | Ok _ -> Alcotest.fail "expected unknown-label failure"
  | Error e ->
      Alcotest.(check bool) "line number in message" true
        (String.length e > 5 && String.sub e 0 5 = "line ")

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "baselines"
    [
      ( "volcano",
        [
          Alcotest.test_case "batch sizes" `Quick test_volcano_batches;
          Alcotest.test_case "flat_map / filter" `Quick test_volcano_flat_map;
        ] );
      ("tuple", [ Alcotest.test_case "extend / select" `Quick test_tuple_extend ]);
      ( "orders",
        [
          Alcotest.test_case "binary connected order" `Quick test_binary_join_order_connected;
          Alcotest.test_case "hybrid var order" `Quick test_hybrid_var_order;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "query pool" `Quick test_engines_query_pool;
          Alcotest.test_case "short intervals" `Quick test_engines_short_intervals;
          Alcotest.test_case "full-domain window" `Quick test_engines_full_domain_window;
        ] );
      ( "workload",
        [
          Alcotest.test_case "budget truncation" `Quick test_budget_truncation;
          Alcotest.test_case "index sizes" `Quick test_index_sizes_positive;
          Alcotest.test_case "generator respects M" `Quick test_query_gen_respects_m;
          Alcotest.test_case "generator deterministic" `Quick test_query_gen_deterministic;
          Alcotest.test_case "suite save/load roundtrip" `Quick test_suite_roundtrip;
        ] );
      qsuite "properties"
        [ prop_engines_agree; prop_engines_agree_random_structure ];
    ]
