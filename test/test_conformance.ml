(* The conformance layer under test: each metamorphic relation as a
   QCheck property over random graphs and queries, the delta-debugging
   shrinker, the reproducer file format, and the fuzz harness end to
   end — including the injected-fault path that must minimize a seeded
   divergence to a tiny reproducer and replay it. *)

open Conformance

let case_of seed =
  let g =
    Testkit.random_graph ~seed ~n_vertices:6 ~n_edges:40 ~n_labels:3
      ~domain:30 ~max_len:8 ()
  in
  let rng = Random.State.make [| seed; 11 |] in
  let ws = Random.State.int rng 30 in
  let we = min 29 (ws + Random.State.int rng 30) in
  let window = Temporal.Interval.make ws (max ws we) in
  let q =
    Testkit.random_query ~seed:((seed * 13) + 1) ~n_labels:3 ~max_edges:3
      ~window
  in
  Case.make_plain g q

(* an extended-query case: random NOT/EXISTS/Allen decorations over the
   same cores (no aggregate — relations do not apply to aggregates) *)
let ecase_of seed =
  let case = case_of seed in
  let eq =
    Testkit.decorate_query ~seed:((seed * 19) + 3) ~n_labels:3
      (Case.core case)
  in
  Case.make case.Case.graph (Semantics.Equery.with_agg eq None)

(* one property per relation, each through a different engine variant so
   the matrix gets cross coverage even at property-test budgets *)
let relation_prop ?(gen = case_of) ~relation ~engine () =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s holds on %s" relation engine)
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let case = gen seed in
      let check =
        Check.Relation { relation; engine; relseed = (seed * 7) + 5 }
      in
      match Harness.run_check ~inject_fault:false case check with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

let relation_props =
  [
    relation_prop ~relation:"window-containment" ~engine:"binary" ();
    relation_prop ~relation:"translation" ~engine:"hybrid" ();
    relation_prop ~relation:"time-reversal" ~engine:"time" ();
    relation_prop ~relation:"edge-deletion" ~engine:"tsrjoin-opt" ();
    relation_prop ~relation:"label-renaming" ~engine:"tsrjoin-basic" ();
    relation_prop ~relation:"sub-pattern" ~engine:"tsrjoin-adaptive" ();
    (* the original relations again, over decorated queries *)
    relation_prop ~gen:ecase_of ~relation:"window-containment"
      ~engine:"tsrjoin-opt" ();
    relation_prop ~gen:ecase_of ~relation:"time-reversal" ~engine:"binary" ();
    relation_prop ~gen:ecase_of ~relation:"edge-deletion" ~engine:"hybrid" ();
    (* the extended-operator relations *)
    relation_prop ~gen:ecase_of ~relation:"anti-semi-partition"
      ~engine:"tsrjoin-opt" ();
    relation_prop ~gen:ecase_of ~relation:"allen-inverse" ~engine:"binary" ();
    relation_prop ~gen:ecase_of ~relation:"semijoin-containment"
      ~engine:"hybrid" ();
    relation_prop ~gen:ecase_of ~relation:"allen-filter"
      ~engine:"tsrjoin-adaptive" ();
    relation_prop ~gen:ecase_of ~relation:"aggregate-topk" ~engine:"time" ();
    (* streaming: replays the suffix through the live ingest pipeline *)
    relation_prop ~relation:"ingest-commutativity" ~engine:"tsrjoin-opt" ();
    relation_prop ~gen:ecase_of ~relation:"ingest-commutativity"
      ~engine:"binary" ();
  ]

let prop_parallel_and_analyzer =
  QCheck.Test.make ~name:"parallel and analyzer checks pass" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let case = case_of seed in
      let ok = function
        | Ok () -> true
        | Error msg -> QCheck.Test.fail_reportf "%s" msg
      in
      ok
        (Harness.run_check ~inject_fault:false case
           (Check.Parallel { domains = 2 + (seed mod 3) }))
      && ok (Harness.run_check ~inject_fault:false case Check.Analyzer))

(* ---- shrinker ---- *)

let test_shrink_synthetic () =
  (* an engine-free predicate with a known minimum: "at least 3 graph
     edges" must shrink to exactly 3 edges (and collapse the query) *)
  let case = case_of 42 in
  Alcotest.(check bool) "starts failing" true (fst (Case.size case) >= 3);
  let failing c = fst (Case.size c) >= 3 in
  let minimized, probes = Shrink.minimize ~failing case in
  let graph_edges, pattern_edges = Case.size minimized in
  Alcotest.(check int) "exactly 3 graph edges" 3 graph_edges;
  Alcotest.(check int) "query collapsed to one edge" 1 pattern_edges;
  Alcotest.(check bool) "spent probes" true (probes > 0)

(* ---- injected fault: fuzz -> minimize -> reproduce ---- *)

let fault_config =
  {
    Harness.default_config with
    Harness.iterations = 5;
    inject_fault = true;
  }

let test_injected_fault_minimizes () =
  let outcome = Harness.fuzz fault_config in
  match outcome.Harness.failure with
  | None -> Alcotest.fail "injected fault was not detected"
  | Some f ->
      (match f.Harness.check with
      | Check.Differential { engine } ->
          Alcotest.(check string) "broken engine blamed" "broken" engine
      | c -> Alcotest.fail ("wrong check blamed: " ^ Check.describe c));
      let graph_edges, _ = Case.size f.Harness.minimized in
      Alcotest.(check bool)
        (Printf.sprintf "minimized to <= 4 graph edges (got %d)" graph_edges)
        true (graph_edges <= 4);
      (* the minimized case must still reproduce deterministically *)
      let repro = Harness.repro_of_failure fault_config f in
      (match Harness.replay ~inject_fault:true repro with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "minimized reproducer does not reproduce");
      (* ... and be clean for the real engines *)
      (match
         Harness.run_check ~inject_fault:false f.Harness.minimized
           (Check.Differential { engine = "tsrjoin-opt" })
       with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("real engine diverges on reproducer: " ^ msg))

let edges_of g =
  List.rev
    (Tgraph.Graph.fold_edges
       (fun acc e ->
         ( Tgraph.Edge.src e,
           Tgraph.Edge.dst e,
           Tgraph.Edge.lbl e,
           Tgraph.Edge.ts e,
           Tgraph.Edge.te e )
         :: acc)
       [] g)

let test_repro_roundtrip () =
  let outcome = Harness.fuzz fault_config in
  match outcome.Harness.failure with
  | None -> Alcotest.fail "injected fault was not detected"
  | Some f -> (
      let repro = Harness.repro_of_failure fault_config f in
      let path = Filename.temp_file "tcsq-test" ".repro" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Repro.save repro path;
          match Repro.load path with
          | Error msg -> Alcotest.fail msg
          | Ok r ->
              Alcotest.(check string)
                "check survives the roundtrip"
                (Check.describe repro.Repro.check)
                (Check.describe r.Repro.check);
              Alcotest.(check (option int))
                "seed survives" repro.Repro.seed r.Repro.seed;
              Alcotest.(check string)
                "summary survives" repro.Repro.summary r.Repro.summary;
              Alcotest.(check (list (list int)))
                "graph survives"
                (List.map
                   (fun (a, b, c, d, e) -> [ a; b; c; d; e ])
                   (edges_of repro.Repro.case.Case.graph))
                (List.map
                   (fun (a, b, c, d, e) -> [ a; b; c; d; e ])
                   (edges_of r.Repro.case.Case.graph));
              Alcotest.(check string)
                "query survives"
                (Semantics.Qlang.render_ext repro.Repro.case.Case.graph
                   repro.Repro.case.Case.query)
                (Semantics.Qlang.render_ext r.Repro.case.Case.graph
                   r.Repro.case.Case.query);
              (* the reloaded reproducer still reproduces *)
              match Harness.replay ~inject_fault:true r with
              | Error _ -> ()
              | Ok () -> Alcotest.fail "reloaded reproducer does not reproduce"))

let test_repro_rejects_garbage () =
  (match Repro.of_string "not a reproducer\n" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Repro.of_string "tcsq-repro/v1\ncheck: differential\n" with
  | Ok _ -> Alcotest.fail "accepted a truncated reproducer"
  | Error _ -> ()

(* ---- harness end to end ---- *)

let test_clean_fuzz () =
  let config = { Harness.default_config with Harness.iterations = 2 } in
  let outcome = Harness.fuzz config in
  (match outcome.Harness.failure with
  | None -> ()
  | Some f -> Alcotest.fail f.Harness.detail);
  Alcotest.(check int) "21 queries per iteration" 42
    outcome.Harness.counts.Harness.queries;
  Alcotest.(check bool) "relations ran" true
    (outcome.Harness.counts.Harness.relation > 0)

let test_clean_fuzz_wire () =
  let config =
    { Harness.default_config with Harness.iterations = 1; wire = true }
  in
  let outcome = Harness.fuzz config in
  match outcome.Harness.failure with
  | None -> ()
  | Some f -> Alcotest.fail f.Harness.detail

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "conformance"
    [
      ("relations", qsuite relation_props);
      ("checks", qsuite [ prop_parallel_and_analyzer ]);
      ( "shrinker",
        [ Alcotest.test_case "synthetic minimum" `Quick test_shrink_synthetic ]
      );
      ( "reproducers",
        [
          Alcotest.test_case "injected fault minimizes" `Quick
            test_injected_fault_minimizes;
          Alcotest.test_case "file roundtrip" `Quick test_repro_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_repro_rejects_garbage;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean fuzz" `Quick test_clean_fuzz;
          Alcotest.test_case "clean fuzz over the wire" `Quick
            test_clean_fuzz_wire;
        ] );
    ]
