(* Tests for duration-constrained (durable) matching: the min_duration
   predicate pushed down into every engine. *)

open Semantics

let window a b = Temporal.Interval.make a b

let test_query_accessors () =
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 9) in
  Alcotest.(check int) "default" 1 (Query.min_duration q);
  let q5 = Query.with_min_duration q 5 in
  Alcotest.(check int) "set" 5 (Query.min_duration q5);
  Alcotest.(check int) "original untouched" 1 (Query.min_duration q);
  Alcotest.check_raises "zero rejected" (Invalid_argument "") (fun () ->
      try ignore (Query.with_min_duration q 0)
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_small_example () =
  (* two 2-star matches: one alive [3,5] (3 ticks), one [8,8] (1 tick) *)
  let g =
    Tgraph.Graph.of_edge_list
      [ (0, 1, 0, 0, 5); (0, 2, 1, 3, 8); (0, 3, 0, 8, 8) ]
  in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 9)
  in
  let counts d =
    Naive.count g (Query.with_min_duration q d)
  in
  Alcotest.(check int) "d=1 keeps both" 2 (counts 1);
  Alcotest.(check int) "d=2 keeps the long one" 1 (counts 2);
  Alcotest.(check int) "d=3 keeps the long one" 1 (counts 3);
  Alcotest.(check int) "d=4 keeps none" 0 (counts 4)

let test_all_engines_respect_duration () =
  let g =
    Test_util.random_graph ~seed:71 ~n_vertices:6 ~n_edges:90 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let engine = Workload.Engine.prepare g in
  List.iter
    (fun d ->
      List.iteri
        (fun qi q0 ->
          let q = Query.with_min_duration q0 d in
          let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
          Array.iter
            (fun m ->
              let actual =
                Match_result.Result_set.of_list
                  (Workload.Engine.evaluate engine m q)
              in
              match
                Match_result.Result_set.diff_summary ~expected ~actual
              with
              | None -> ()
              | Some diff ->
                  Alcotest.failf "d=%d, query %d, %s: %s" d qi
                    (Workload.Engine.method_name m)
                    diff)
            Workload.Engine.all_methods)
        (Test_util.query_pool ~n_labels:3 ~window:(window 8 30)))
    [ 2; 4; 8 ]

let test_duration_equals_post_filter () =
  let g =
    Test_util.random_graph ~seed:72 ~n_vertices:5 ~n_edges:70 ~n_labels:2
      ~domain:35 ~max_len:12 ()
  in
  let tai = Tcsq_core.Tai.build g in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 5 30)
  in
  let all = Tcsq_core.Tsrjoin.evaluate tai q in
  List.iter
    (fun d ->
      let expected =
        List.filter
          (fun m -> Temporal.Interval.length m.Match_result.life >= d)
          all
      in
      Test_util.check_same_results
        ~msg:(Printf.sprintf "d = %d equals post-filter" d)
        expected
        (Tcsq_core.Tsrjoin.evaluate tai (Query.with_min_duration q d)))
    [ 1; 2; 3; 5; 10 ]

let test_pushdown_prunes_work () =
  (* on long-interval data a high duration floor should cut the explored
     partials, not just the output *)
  let g =
    Test_util.random_graph ~seed:73 ~n_vertices:6 ~n_edges:150 ~n_labels:2
      ~domain:60 ~max_len:20 ()
  in
  let tai = Tcsq_core.Tai.build g in
  let q =
    Query.make ~n_vars:4
      ~edges:[ (0, 0, 1); (1, 1, 2); (0, 2, 3) ]
      ~window:(window 0 59)
  in
  let intermediates d =
    let stats = Run_stats.create () in
    ignore
      (Tcsq_core.Tsrjoin.count ~stats tai (Query.with_min_duration q d));
    stats.Run_stats.intermediate
  in
  let unconstrained = intermediates 1 in
  let constrained = intermediates 15 in
  Alcotest.(check bool)
    (Printf.sprintf "pruned (%d <= %d)" constrained unconstrained)
    true
    (constrained <= unconstrained)

let test_qlang_lasting () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 9) ] in
  let q =
    Result.get_ok
      (Qlang.parse_and_compile g "MATCH (x)-[l0]->(y) IN [0, 9] LASTING 5")
  in
  Alcotest.(check int) "lasting parsed" 5 (Query.min_duration q);
  (* render keeps it *)
  let text = Qlang.render g q in
  Alcotest.(check bool) "rendered" true
    (String.length text >= 9
    && Result.get_ok (Qlang.parse_and_compile g text)
       |> Query.min_duration = 5);
  (* bad durations rejected *)
  (match Qlang.parse "MATCH (x)-[a]->(y) IN [0, 9] LASTING 0" with
  | Ok _ -> Alcotest.fail "LASTING 0 should fail"
  | Error _ -> ());
  match Qlang.parse "MATCH (x)-[a]->(y) LASTING" with
  | Ok _ -> Alcotest.fail "missing duration should fail"
  | Error _ -> ()

let test_verify_checks_duration () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 2) ] in
  let q =
    Query.with_min_duration
      (Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 9))
      5
  in
  let m = Match_result.make [| 0 |] (window 0 2) in
  Alcotest.(check bool) "too short rejected" true
    (Result.is_error (Match_result.verify g q m))

let prop_engines_agree_durable =
  QCheck.Test.make ~name:"all engines agree under duration floors" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 1 10))
    (fun (seed, d) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:45 ~n_labels:3
          ~domain:25 ~max_len:8 ()
      in
      let engine = Workload.Engine.prepare g in
      List.for_all
        (fun q0 ->
          let q = Query.with_min_duration q0 d in
          let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
          Array.for_all
            (fun m ->
              Match_result.Result_set.equal expected
                (Match_result.Result_set.of_list
                   (Workload.Engine.evaluate engine m q)))
            Workload.Engine.all_methods)
        (Test_util.query_pool ~n_labels:3 ~window:(window 4 18)))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "durable_queries"
    [
      ( "semantics",
        [
          Alcotest.test_case "query accessors" `Quick test_query_accessors;
          Alcotest.test_case "small example" `Quick test_small_example;
          Alcotest.test_case "equals post-filter" `Quick test_duration_equals_post_filter;
          Alcotest.test_case "verify checks duration" `Quick test_verify_checks_duration;
        ] );
      ( "engines",
        [
          Alcotest.test_case "all engines respect the floor" `Quick
            test_all_engines_respect_duration;
          Alcotest.test_case "push-down prunes" `Quick test_pushdown_prunes_work;
        ] );
      ("qlang", [ Alcotest.test_case "LASTING clause" `Quick test_qlang_lasting ]);
      qsuite "properties" [ prop_engines_agree_durable ];
    ]
