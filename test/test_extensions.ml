(* Tests for the extension features: the adaptive (deferring) planner
   and top-k durable matches. *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b

(* ---------- adaptive planner ---------- *)

let test_adaptive_valid_and_equivalent () =
  let g =
    Test_util.random_graph ~seed:31 ~n_vertices:6 ~n_edges:90 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let cost = Plan.cost_model tai in
  List.iteri
    (fun i q ->
      let plan = Plan.build_adaptive ~cost tai q in
      (match Plan.validate plan with
      | Ok () -> ()
      | Error e -> Alcotest.failf "query %d: invalid adaptive plan: %s" i e);
      let expected =
        Match_result.Result_set.of_list (Tsrjoin.evaluate ~cost tai q)
      in
      let actual =
        Match_result.Result_set.of_list (Tsrjoin.evaluate ~plan tai q)
      in
      match Match_result.Result_set.diff_summary ~expected ~actual with
      | None -> ()
      | Some diff -> Alcotest.failf "query %d: adaptive differs: %s" i diff)
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 30))

let test_adaptive_defers_skewed_edge () =
  (* A 2-star whose second label is enormously more frequent: the
     adaptive plan should split the star into two steps. *)
  let b = Tgraph.Graph.Builder.create () in
  let edge src dst lbl ts te =
    ignore (Tgraph.Graph.Builder.add_edge_named b ~src ~dst ~lbl ~ts ~te)
  in
  (* rare label "r": a couple of edges; frequent label "f": many *)
  edge 0 1 "r" 0 5;
  edge 2 1 "r" 4 9;
  for i = 0 to 199 do
    edge (i mod 5) ((i + 1) mod 7) "f" (i mod 50) ((i mod 50) + 3)
  done;
  let g = Tgraph.Graph.Builder.finish b in
  let r = Option.get (Tgraph.Label.find (Tgraph.Graph.labels g) "r") in
  let f = Option.get (Tgraph.Label.find (Tgraph.Graph.labels g) "f") in
  let tai = Tai.build g in
  (* chain x0 -r-> x1 -f-> x2: pivot x1 would normally match both at
     once *)
  let q =
    Query.make ~n_vars:3 ~edges:[ (r, 0, 1); (f, 1, 2) ] ~window:(window 0 49)
  in
  let adaptive = Plan.build_adaptive ~defer_ratio:2.0 tai q in
  Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate adaptive));
  Alcotest.(check bool)
    "more steps than the greedy plan" true
    (Array.length (Plan.steps adaptive) >= 2);
  (* results unchanged *)
  let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
  let actual =
    Match_result.Result_set.of_list (Tsrjoin.evaluate ~plan:adaptive tai q)
  in
  Alcotest.(check bool) "same results" true
    (Match_result.Result_set.equal expected actual)

let test_adaptive_rejects_bad_ratio () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 9) in
  Alcotest.check_raises "ratio < 1" (Invalid_argument "") (fun () ->
      try ignore (Plan.build_adaptive ~defer_ratio:0.5 tai q)
      with Invalid_argument _ -> raise (Invalid_argument ""))

let prop_adaptive_equivalent =
  QCheck.Test.make ~name:"adaptive plans compute the same results" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 10 80))
    (fun (seed, ratio10) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:50 ~n_labels:3
          ~domain:30 ~max_len:8 ()
      in
      let tai = Tai.build g in
      let cost = Plan.cost_model tai in
      let defer_ratio = float_of_int ratio10 /. 10.0 in
      List.for_all
        (fun q ->
          let plan = Plan.build_adaptive ~cost ~defer_ratio tai q in
          Result.is_ok (Plan.validate plan)
          && Match_result.Result_set.equal
               (Match_result.Result_set.of_list (Naive.evaluate g q))
               (Match_result.Result_set.of_list (Tsrjoin.evaluate ~plan tai q)))
        (Test_util.query_pool ~n_labels:3 ~window:(window 5 22)))

(* ---------- top-k durable matches ---------- *)

let top_k_by_sorting tai q k =
  Tsrjoin.evaluate tai q
  |> List.sort (fun a b ->
         let c = Int.compare (Durable.durability b) (Durable.durability a) in
         if c <> 0 then c else Match_result.compare a b)
  |> List.filteri (fun i _ -> i < k)

let test_top_k_matches_sorting () =
  let g =
    Test_util.random_graph ~seed:33 ~n_vertices:6 ~n_edges:90 ~n_labels:3
      ~domain:40 ~max_len:12 ()
  in
  let tai = Tai.build g in
  List.iteri
    (fun i q ->
      List.iter
        (fun k ->
          let expected = top_k_by_sorting tai q k in
          let actual = Durable.top_k tai q ~k in
          if
            not
              (List.equal
                 (fun a b -> Match_result.compare a b = 0)
                 expected actual)
          then
            Alcotest.failf "query %d, k = %d: top-k mismatch (%d vs %d items)" i
              k (List.length expected) (List.length actual))
        [ 0; 1; 3; 10; 1000 ])
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 30))

let test_top_k_ordering () =
  let g =
    Test_util.random_graph ~seed:34 ~n_vertices:5 ~n_edges:70 ~n_labels:2
      ~domain:30 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 29)
  in
  let top = Durable.top_k tai q ~k:5 in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        Durable.durability a >= Durable.durability b && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by durability" true (non_increasing top)

let test_top_k_validation () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 9) in
  Alcotest.check_raises "negative k" (Invalid_argument "") (fun () ->
      try ignore (Durable.top_k tai q ~k:(-1))
      with Invalid_argument _ -> raise (Invalid_argument ""));
  Alcotest.(check int) "k = 0" 0 (List.length (Durable.top_k tai q ~k:0))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "extensions"
    [
      ( "adaptive-plan",
        [
          Alcotest.test_case "valid + equivalent on pool" `Quick
            test_adaptive_valid_and_equivalent;
          Alcotest.test_case "defers the skewed edge" `Quick
            test_adaptive_defers_skewed_edge;
          Alcotest.test_case "rejects ratio < 1" `Quick test_adaptive_rejects_bad_ratio;
        ] );
      ( "durable-top-k",
        [
          Alcotest.test_case "equals sort-based top-k" `Quick test_top_k_matches_sorting;
          Alcotest.test_case "ordering" `Quick test_top_k_ordering;
          Alcotest.test_case "validation" `Quick test_top_k_validation;
        ] );
      qsuite "properties" [ prop_adaptive_equivalent ];
    ]
