(* Failure injection: budget exhaustion, user exceptions escaping from
   emit callbacks, and IO failures must neither corrupt state nor leak
   wrong answers on subsequent use. All engines are stateless per query,
   and these tests pin that down. *)

open Semantics

exception Consumer_stopped

let window a b = Temporal.Interval.make a b

let graph () =
  Test_util.random_graph ~seed:101 ~n_vertices:5 ~n_edges:80 ~n_labels:2
    ~domain:30 ~max_len:10 ()

let query () =
  Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 29)

let test_budget_then_clean_rerun () =
  let g = graph () in
  let engine = Workload.Engine.prepare g in
  let q = query () in
  let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
  Array.iter
    (fun m ->
      (* first run dies on a tiny budget *)
      let stats =
        Run_stats.create
          ~limits:{ Run_stats.max_results = 2; max_intermediate = max_int }
          ()
      in
      (match Workload.Engine.count ~stats engine m q with
      | _ ->
          (* fewer than 3 results overall is also fine *)
          ()
      | exception Run_stats.Limit_exceeded _ -> ());
      (* the engine and its indexes must be unaffected *)
      let actual =
        Match_result.Result_set.of_list (Workload.Engine.evaluate engine m q)
      in
      match Match_result.Result_set.diff_summary ~expected ~actual with
      | None -> ()
      | Some diff ->
          Alcotest.failf "%s after budget failure: %s"
            (Workload.Engine.method_name m)
            diff)
    Workload.Engine.all_methods

let test_intermediate_budget () =
  let g = graph () in
  let engine = Workload.Engine.prepare g in
  let q = query () in
  Array.iter
    (fun m ->
      let stats =
        Run_stats.create
          ~limits:{ Run_stats.max_results = max_int; max_intermediate = 1 } ()
      in
      match Workload.Engine.count ~stats engine m q with
      | n ->
          (* engines that reach a result without 2 intermediates may
             finish; they must then agree with the oracle *)
          Alcotest.(check int)
            (Workload.Engine.method_name m ^ " completed under tiny budget")
            (Naive.count g q) n
      | exception Run_stats.Limit_exceeded _ -> ())
    Workload.Engine.all_methods

let test_consumer_exception_propagates () =
  let g = graph () in
  let engine = Workload.Engine.prepare g in
  let q = query () in
  let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
  Array.iter
    (fun m ->
      let seen = ref 0 in
      (match
         Workload.Engine.run engine m q ~emit:(fun _ ->
             incr seen;
             if !seen >= 2 then raise Consumer_stopped)
       with
      | () ->
          Alcotest.(check bool)
            (Workload.Engine.method_name m ^ " had under 2 results")
            true (!seen < 2)
      | exception Consumer_stopped -> ());
      (* reusable afterwards *)
      let actual =
        Match_result.Result_set.of_list (Workload.Engine.evaluate engine m q)
      in
      match Match_result.Result_set.diff_summary ~expected ~actual with
      | None -> ()
      | Some diff ->
          Alcotest.failf "%s after consumer exception: %s"
            (Workload.Engine.method_name m)
            diff)
    Workload.Engine.all_methods

let test_tsrjoin_exception_mid_plan () =
  (* exception thrown from deep inside a multi-step plan *)
  let g = graph () in
  let tai = Tcsq_core.Tai.build g in
  let q =
    Query.make ~n_vars:4
      ~edges:[ (0, 0, 1); (1, 1, 2); (0, 2, 3) ]
      ~window:(window 0 29)
  in
  let expected = Tcsq_core.Tsrjoin.evaluate tai q in
  if expected <> [] then begin
    (match
       Tcsq_core.Tsrjoin.run tai q ~emit:(fun _ -> raise Consumer_stopped)
     with
    | () -> Alcotest.fail "expected the consumer exception"
    | exception Consumer_stopped -> ());
    Test_util.check_same_results ~msg:"tai reusable after mid-plan exception"
      expected
      (Tcsq_core.Tsrjoin.evaluate tai q)
  end

let test_incremental_survives_query_failure () =
  let g = graph () in
  let inc = Tcsq_core.Incremental.create ~merge_threshold:4 g in
  ignore (Tcsq_core.Incremental.add_edge inc ~src:0 ~dst:1 ~lbl:0 ~ts:5 ~te:9);
  let q = query () in
  (match
     Tcsq_core.Tsrjoin.run
       (Tcsq_core.Incremental.tai inc)
       q
       ~emit:(fun _ -> raise Consumer_stopped)
   with
  | () -> ()
  | exception Consumer_stopped -> ());
  (* further ingest and querying still work *)
  ignore (Tcsq_core.Incremental.add_edge inc ~src:1 ~dst:2 ~lbl:1 ~ts:6 ~te:8);
  let expected = Naive.evaluate (Tcsq_core.Incremental.graph inc) q in
  Test_util.check_same_results ~msg:"incremental after failure" expected
    (Tcsq_core.Incremental.evaluate inc q)

let test_io_failures () =
  Alcotest.check_raises "missing csv" (Sys_error "") (fun () ->
      try ignore (Tgraph.Io.load "/nonexistent/path.csv")
      with Sys_error _ -> raise (Sys_error ""));
  Alcotest.check_raises "missing binary" (Sys_error "") (fun () ->
      try ignore (Tgraph.Binary_io.load "/nonexistent/path.bin")
      with Sys_error _ -> raise (Sys_error ""));
  (* an empty file is a malformed binary but a valid (empty) csv *)
  let path = Filename.temp_file "tcsq_fail" ".dat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.check_raises "empty binary" (Tgraph.Io.Malformed "") (fun () ->
          try ignore (Tgraph.Binary_io.load path)
          with Tgraph.Io.Malformed _ -> raise (Tgraph.Io.Malformed ""));
      let g = Tgraph.Io.load path in
      Alcotest.(check int) "empty csv loads empty graph" 0 (Tgraph.Graph.n_edges g))

let test_generator_rejects_bad_configs () =
  let base : Tgraph.Generator.config =
    {
      topology = Uniform_random { n_vertices = 5 };
      n_edges = 10;
      n_labels = 2;
      domain = 10;
      mean_duration = 2.0;
      label_affinity = None;
      seed = 1;
    }
  in
  let rejects name cfg =
    Alcotest.check_raises name (Invalid_argument "") (fun () ->
        try ignore (Tgraph.Generator.generate cfg)
        with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  rejects "negative edges" { base with n_edges = -1 };
  rejects "no labels" { base with n_labels = 0 };
  rejects "no domain" { base with domain = 0 };
  rejects "bad affinity" { base with label_affinity = Some 99 };
  rejects "tiny vertex set"
    { base with topology = Uniform_random { n_vertices = 1 } }

let () =
  Alcotest.run "failure_injection"
    [
      ( "budgets",
        [
          Alcotest.test_case "result budget then rerun" `Quick
            test_budget_then_clean_rerun;
          Alcotest.test_case "intermediate budget" `Quick test_intermediate_budget;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "consumer exception propagates" `Quick
            test_consumer_exception_propagates;
          Alcotest.test_case "mid-plan exception" `Quick test_tsrjoin_exception_mid_plan;
          Alcotest.test_case "incremental survives" `Quick
            test_incremental_survives_query_failure;
        ] );
      ( "io",
        [
          Alcotest.test_case "io failures" `Quick test_io_failures;
          Alcotest.test_case "generator config validation" `Quick
            test_generator_rejects_bad_configs;
        ] );
    ]
