(* Query-shape fingerprint stability: the invariances the plan cache
   and the query log's grouping key depend on (QCheck properties over
   random extended queries), and the sensitivities that keep distinct
   shapes from colliding by construction. *)

open Semantics

let window = Temporal.Interval.make 5 30

let graph () =
  Test_util.random_graph ~seed:4242 ~n_vertices:6 ~n_edges:80 ~n_labels:3
    ~domain:40 ~max_len:10 ()

let equery_arb g =
  QCheck.make
    ~print:(fun eq -> Qlang.render_ext g eq)
    (Testkit.equery_gen ~n_labels:3 ~max_edges:4 ~window)

(* ---- pinned canonical form ----

   The fingerprint is a durable key (query logs outlive builds), so the
   canonical form of a known query is pinned exactly: an accidental
   format change shows up here before it silently splits log history. *)
let test_pinned_canonical () =
  let q =
    Query.with_min_duration
      (Query.make ~n_vars:3
         ~edges:[ (1, 0, 1); (Query.any_label, 1, 2) ]
         ~window:(Temporal.Interval.make 10 29))
      3
  in
  let eq =
    Equery.make
      ~anti:[ { Equery.lbl = 0; src = Equery.Var 1; dst = Equery.Any } ]
      ~allen:[ (0, Temporal.Allen.Before, 1) ]
      ~agg:(Equery.Top 2) q
  in
  Alcotest.(check string)
    "canonical form is pinned"
    "tcsq-fp/v1|e1:0>1|e-1:1>2|w20|d3|n0:1>*|a0 before 1|top2"
    (Fingerprint.canonical eq);
  Alcotest.(check string)
    "fingerprint is pinned" "015d18bfc157a527" (Fingerprint.of_equery eq)

(* ---- invariances ---- *)

let prop_roundtrip_preserves =
  let g = graph () in
  QCheck.Test.make ~name:"render/parse roundtrip preserves fingerprint"
    ~count:200 (equery_arb g) (fun eq ->
      match Qlang.parse_and_compile_ext g (Qlang.render_ext g eq) with
      | Error _ -> false
      | Ok eq' -> Fingerprint.of_equery eq = Fingerprint.of_equery eq')

(* rename every variable through a derangement-ish permutation while
   keeping the edge list order: the canonical form renumbers by first
   appearance, so the fingerprint must not move *)
let permute_vars q perm =
  let edges =
    Array.to_list
      (Array.map
         (fun (e : Query.edge) ->
           (e.Query.lbl, perm.(e.Query.src_var), perm.(e.Query.dst_var)))
         (Query.edges q))
  in
  Query.with_min_duration
    (Query.make ~n_vars:(Query.n_vars q) ~edges ~window:(Query.window q))
    (Query.min_duration q)

let prop_renaming_preserves =
  let g = graph () in
  QCheck.Test.make ~name:"variable renaming preserves fingerprint" ~count:200
    QCheck.(pair (equery_arb g) (int_range 1 1000))
    (fun (eq, rot) ->
      let q = Equery.core eq in
      let n = Query.n_vars q in
      let perm = Array.init n (fun i -> (i + rot) mod n) in
      let q' = permute_vars q perm in
      let remap = function
        | Equery.Any -> Equery.Any
        | Equery.Var v -> Equery.Var perm.(v)
      in
      let clauses cs =
        List.map
          (fun (c : Equery.clause) ->
            { c with Equery.src = remap c.Equery.src; dst = remap c.Equery.dst })
          cs
      in
      let eq' =
        Equery.make ~anti:(clauses (Equery.anti eq))
          ~semi:(clauses (Equery.semi eq)) ~allen:(Equery.allen eq)
          ?agg:(Equery.agg eq) q'
      in
      Fingerprint.of_equery eq = Fingerprint.of_equery eq')

let prop_window_shift_preserves =
  let g = graph () in
  QCheck.Test.make ~name:"window translation preserves fingerprint" ~count:200
    QCheck.(pair (equery_arb g) (int_range 1 10_000))
    (fun (eq, delta) ->
      let w = Query.window (Equery.core eq) in
      let w' =
        Temporal.Interval.make
          (Temporal.Interval.ts w + delta)
          (Temporal.Interval.te w + delta)
      in
      Fingerprint.of_equery eq
      = Fingerprint.of_equery (Equery.with_window eq w'))

let prop_clause_order_invariant =
  let g = graph () in
  QCheck.Test.make ~name:"clause/constraint order is canonicalized" ~count:200
    (equery_arb g) (fun eq ->
      let eq' =
        Equery.make
          ~anti:(List.rev (Equery.anti eq))
          ~semi:(List.rev (Equery.semi eq))
          ~allen:(List.rev (Equery.allen eq))
          ?agg:(Equery.agg eq) (Equery.core eq)
      in
      Fingerprint.of_equery eq = Fingerprint.of_equery eq')

(* ---- sensitivities ---- *)

let prop_label_change_alters =
  let g = graph () in
  QCheck.Test.make ~name:"changing a label changes the fingerprint"
    ~count:200 (equery_arb g) (fun eq ->
      let q = Equery.core eq in
      (* bump every real label by one: a different shape unless the
         query was all-wildcard, which we skip *)
      let has_real =
        Array.exists
          (fun (e : Query.edge) -> e.Query.lbl <> Query.any_label)
          (Query.edges q)
      in
      QCheck.assume has_real;
      let q' = Testkit.map_query_labels q ~f:(fun l -> l + 1) in
      Fingerprint.of_query q <> Fingerprint.of_query q')

let test_structural_sensitivity () =
  let base =
    Query.make ~n_vars:2 ~edges:[ (1, 0, 1) ]
      ~window:(Temporal.Interval.make 0 19)
  in
  let fp q = Fingerprint.of_equery (Equery.plain q) in
  Alcotest.(check bool)
    "window length matters" false
    (fp base = fp (Query.with_window base (Temporal.Interval.make 0 24)));
  Alcotest.(check bool)
    "duration floor matters" false
    (fp base = fp (Query.with_min_duration base 4));
  Alcotest.(check bool)
    "an added clause matters" false
    (Fingerprint.of_equery (Equery.plain base)
    = Fingerprint.of_equery
        (Equery.make
           ~semi:[ { Equery.lbl = 0; src = Equery.Var 0; dst = Equery.Any } ]
           base));
  Alcotest.(check bool)
    "the aggregate matters" false
    (Fingerprint.of_equery (Equery.plain base)
    = Fingerprint.of_equery (Equery.make ~agg:Equery.Count base));
  Alcotest.(check bool)
    "an added edge matters" false
    (fp base
    = fp
        (Query.make ~n_vars:2
           ~edges:[ (1, 0, 1); (1, 0, 1) ]
           ~window:(Temporal.Interval.make 0 19)))

let () =
  Alcotest.run "fingerprint"
    [
      ( "pinned",
        [
          Alcotest.test_case "canonical form and hash" `Quick
            test_pinned_canonical;
          Alcotest.test_case "structural sensitivity" `Quick
            test_structural_sensitivity;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_roundtrip_preserves; prop_renaming_preserves;
            prop_window_shift_preserves; prop_clause_order_invariant;
            prop_label_change_alters;
          ] );
    ]
