(* Tests for the per-label temporal histograms used by the cost model. *)

open Tgraph

let graph () =
  (* label 0: ten edges bursty in [0, 9]; label 1: two long edges over
     the whole domain [0, 99] *)
  let edges =
    List.init 10 (fun i -> (0, 1, 0, i, i))
    @ [ (0, 1, 1, 0, 99); (1, 0, 1, 0, 99) ]
  in
  Graph.of_edge_list edges

let test_bursty_vs_flat () =
  let h = Time_histogram.build ~n_buckets:10 (graph ()) in
  (* the burst label is fully active in [0, 9] and dead in [50, 59] *)
  let early = Time_histogram.active_in_window h ~lbl:0 ~ws:0 ~we:9 in
  let late = Time_histogram.active_in_window h ~lbl:0 ~ws:50 ~we:59 in
  Alcotest.(check bool) "burst early" true (early >= 9.0);
  Alcotest.(check bool) "burst dead late" true (late < 0.5);
  (* the long label is active everywhere *)
  let long_late = Time_histogram.active_in_window h ~lbl:1 ~ws:50 ~we:59 in
  Alcotest.(check bool) "long label alive late" true (long_late >= 1.5)

let test_selectivity_bounds () =
  let h = Time_histogram.build ~n_buckets:10 (graph ()) in
  let s_early = Time_histogram.selectivity h ~lbl:0 ~ws:0 ~we:9 in
  let s_late = Time_histogram.selectivity h ~lbl:0 ~ws:50 ~we:59 in
  Alcotest.(check bool) "in (0, 1]" true (s_early > 0.0 && s_early <= 1.0);
  Alcotest.(check bool) "ordering" true (s_early > s_late);
  Alcotest.(check bool) "unknown label" true
    (Time_histogram.selectivity h ~lbl:9 ~ws:0 ~we:9 <= 1e-8)

let test_empty_graph () =
  let g = Graph.Builder.finish (Graph.Builder.create ()) in
  let h = Time_histogram.build g in
  Alcotest.(check bool) "zero estimate" true
    (Time_histogram.active_in_window h ~lbl:0 ~ws:0 ~we:10 = 0.0)

let test_degenerate_windows () =
  let h = Time_histogram.build ~n_buckets:4 (graph ()) in
  Alcotest.(check bool) "inverted window" true
    (Time_histogram.active_in_window h ~lbl:0 ~ws:9 ~we:0 = 0.0);
  (* windows beyond the domain clamp to edge buckets *)
  let far = Time_histogram.active_in_window h ~lbl:1 ~ws:1000 ~we:2000 in
  Alcotest.(check bool) "clamped lookup is finite" true (far >= 0.0)

let prop_window_monotone =
  QCheck.Test.make ~name:"wider windows never lose active mass" ~count:200
    QCheck.(triple (int_range 0 5000) (int_range 0 80) (int_range 0 15))
    (fun (seed, ws, width) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:60 ~n_labels:3
          ~domain:100 ~max_len:20 ()
      in
      let h = Time_histogram.build ~n_buckets:16 g in
      let narrow = Time_histogram.active_in_window h ~lbl:0 ~ws ~we:(ws + width) in
      let wide =
        Time_histogram.active_in_window h ~lbl:0 ~ws ~we:(ws + width + 20)
      in
      wide +. 1e-9 >= narrow)

let prop_full_window_counts_all =
  QCheck.Test.make ~name:"domain-wide window ≈ label count or more" ~count:100
    QCheck.(int_range 0 5000)
    (fun seed ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:60 ~n_labels:2
          ~domain:50 ~max_len:10 ()
      in
      if Tgraph.Graph.n_edges g = 0 then true
      else begin
        let h = Time_histogram.build ~n_buckets:8 g in
        let domain = Tgraph.Graph.time_domain g in
        let count = ref 0 in
        Tgraph.Graph.iter_edges
          (fun e -> if Tgraph.Edge.lbl e = 0 then incr count)
          g;
        Time_histogram.active_in_window h ~lbl:0
          ~ws:(Temporal.Interval.ts domain)
          ~we:(Temporal.Interval.te domain)
        +. 1e-6
        >= float_of_int !count
      end)

(* With point-mass intervals ([ts, ts]) and at least as many buckets as
   the time domain has ticks, bucket width is 1 and every bucket is
   either fully inside or fully outside the window — the overlap
   estimate must equal the exact overlap count, not approximate it. *)
let prop_point_mass_exact =
  QCheck.Test.make ~name:"point-mass estimates are exact" ~count:200
    QCheck.(triple (int_range 0 5000) (int_range 0 31) (int_range 0 31))
    (fun (seed, a, b) ->
      let ws = min a b and we = max a b in
      let g =
        Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:40 ~n_labels:2
          ~domain:32 ~max_len:1 ()
      in
      let h = Time_histogram.build ~n_buckets:64 g in
      let exact = ref 0 in
      Graph.iter_edges
        (fun e ->
          if Edge.lbl e = 0 && Edge.ts e >= ws && Edge.ts e <= we then
            incr exact)
        g;
      let est = Time_histogram.active_in_window h ~lbl:0 ~ws ~we in
      Float.abs (est -. float_of_int !exact) < 1e-6)

(* For general interval distributions the estimate is only exact up to
   bucket granularity.  On a window aligned to whole buckets it is
   sandwiched: at least the exact count of overlapping edges (every
   overlapping edge touches a window bucket with full coverage), and at
   most the per-edge touched-bucket cap floor((len-1)/bw) + 2 summed
   over the overlapping edges — i.e. within bucket-width error. *)
let prop_aligned_window_bracketing =
  QCheck.Test.make ~name:"aligned windows within bucket-width error"
    ~count:200
    QCheck.(triple (int_range 0 5000) (int_range 0 7) (int_range 1 8))
    (fun (seed, a, j) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:60 ~n_labels:2
          ~domain:100 ~max_len:20 ()
      in
      let nb = 8 in
      let h = Time_histogram.build ~n_buckets:nb g in
      let domain = Tgraph.Graph.time_domain g in
      let ds = Temporal.Interval.ts domain in
      let total = Temporal.Interval.length domain in
      let bw = max 1 ((total + nb - 1) / nb) in
      (* kmax whole buckets fit inside the domain; pick an aligned
         sub-range of them so every window bucket has coverage 1 *)
      let kmax = total / bw in
      if kmax = 0 then true
      else begin
        let a = a mod kmax in
        let j = 1 + ((j - 1) mod (kmax - a)) in
        let ws = ds + (a * bw) and we = ds + ((a + j) * bw) - 1 in
        let exact = ref 0 and cap = ref 0.0 in
        Graph.iter_edges
          (fun e ->
            if Edge.lbl e = 0 && Edge.ts e <= we && Edge.te e >= ws then begin
              incr exact;
              let len = Edge.te e - Edge.ts e + 1 in
              cap := !cap +. float_of_int (((len - 1) / bw) + 2)
            end)
          g;
        let est = Time_histogram.active_in_window h ~lbl:0 ~ws ~we in
        est +. 1e-6 >= float_of_int !exact && est <= !cap +. 1e-6
      end)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "histogram"
    [
      ( "basics",
        [
          Alcotest.test_case "bursty vs flat labels" `Quick test_bursty_vs_flat;
          Alcotest.test_case "selectivity bounds" `Quick test_selectivity_bounds;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "degenerate windows" `Quick test_degenerate_windows;
        ] );
      qsuite "properties"
        [
          prop_window_monotone; prop_full_window_counts_all;
          prop_point_mass_exact; prop_aligned_window_bracketing;
        ];
    ]
