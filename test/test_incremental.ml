(* Tests for incremental index maintenance: Graph.append, Tai.merge, and
   the Incremental wrapper — all cross-checked against from-scratch
   rebuilds and the oracle. *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b

(* deep structural comparison of two TAIs through their public API *)
let check_tai_equivalent ~msg reference candidate =
  let g = Tai.graph reference in
  let n_labels = Tgraph.Graph.n_labels g in
  let ids tsr = List.map Tgraph.Edge.id (Tsr.to_list tsr) in
  for lbl = 0 to n_labels - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "%s: sources(%d)" msg lbl)
      (Array.to_list (Tai.sources reference ~lbl))
      (Array.to_list (Tai.sources candidate ~lbl));
    Alcotest.(check (list int))
      (Printf.sprintf "%s: destinations(%d)" msg lbl)
      (Array.to_list (Tai.destinations reference ~lbl))
      (Array.to_list (Tai.destinations candidate ~lbl));
    Array.iter
      (fun src ->
        Alcotest.(check (list int))
          (Printf.sprintf "%s: tsr_out(%d, %d)" msg lbl src)
          (ids (Tai.tsr_out reference ~lbl ~src))
          (ids (Tai.tsr_out candidate ~lbl ~src));
        (* the attached coverage must describe the same step function *)
        let tuples tai =
          match Tsr.coverage (Tai.tsr_out tai ~lbl ~src) with
          | None -> []
          | Some c ->
              Array.to_list
                (Array.map
                   (fun { Temporal.Coverage.cs; ce; ec } -> (cs, ce, ec))
                   (Temporal.Coverage.tuples c))
        in
        Alcotest.(check (list (triple int int int)))
          (Printf.sprintf "%s: coverage(%d, %d)" msg lbl src)
          (tuples reference) (tuples candidate);
        Array.iter
          (fun dst ->
            Alcotest.(check (list int))
              (Printf.sprintf "%s: tsr_between(%d, %d, %d)" msg lbl src dst)
              (ids (Tai.tsr_between reference ~lbl ~src ~dst))
              (ids (Tai.tsr_between candidate ~lbl ~src ~dst)))
          (Tai.dsts_of_src reference ~lbl ~src))
      (Tai.sources reference ~lbl);
    Array.iter
      (fun dst ->
        Alcotest.(check (list int))
          (Printf.sprintf "%s: tsr_in(%d, %d)" msg lbl dst)
          (ids (Tai.tsr_in reference ~lbl ~dst))
          (ids (Tai.tsr_in candidate ~lbl ~dst)))
      (Tai.destinations reference ~lbl)
  done

let random_extra rng n ~n_vertices ~n_labels ~domain =
  List.init n (fun _ ->
      let ts = Random.State.int rng domain in
      ( Random.State.int rng n_vertices,
        Random.State.int rng n_vertices,
        Random.State.int rng n_labels,
        ts,
        min (domain - 1) (ts + Random.State.int rng 10) ))

let test_append_basics () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let g' = Tgraph.Graph.append g [ (1, 4, 0, 3, 8) ] in
  Alcotest.(check int) "edges" 2 (Tgraph.Graph.n_edges g');
  Alcotest.(check int) "vertices grow" 5 (Tgraph.Graph.n_vertices g');
  Alcotest.(check int) "id continues" 1 (Tgraph.Edge.id (Tgraph.Graph.edge g' 1));
  Alcotest.(check int) "base unchanged" 1 (Tgraph.Graph.n_edges g);
  Alcotest.check_raises "unknown label" (Invalid_argument "") (fun () ->
      try ignore (Tgraph.Graph.append g [ (0, 1, 9, 0, 1) ])
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_merge_equals_rebuild () =
  let rng = Random.State.make [| 41 |] in
  let g =
    Test_util.random_graph ~seed:41 ~n_vertices:6 ~n_edges:60 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let extra = random_extra rng 25 ~n_vertices:6 ~n_labels:3 ~domain:40 in
  let g' = Tgraph.Graph.append g extra in
  let merged = Tai.merge tai g' in
  let rebuilt = Tai.build g' in
  check_tai_equivalent ~msg:"merge vs rebuild" rebuilt merged

let test_merge_rejects_non_extension () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5); (1, 2, 0, 1, 2) ] in
  let tai = Tai.build g in
  let smaller = Tgraph.Graph.prefix g 1 in
  Alcotest.check_raises "shrunk graph" (Invalid_argument "") (fun () ->
      try ignore (Tai.merge tai smaller)
      with Invalid_argument _ -> raise (Invalid_argument ""));
  let different = Tgraph.Graph.of_edge_list [ (0, 2, 0, 0, 5); (1, 2, 0, 1, 2) ] in
  Alcotest.check_raises "different prefix" (Invalid_argument "") (fun () ->
      try ignore (Tai.merge tai different)
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_merge_noop () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let tai = Tai.build g in
  Alcotest.(check bool) "same tai back" true (Tai.merge tai g == tai)

let test_incremental_query_correctness () =
  let g =
    Test_util.random_graph ~seed:42 ~n_vertices:5 ~n_edges:40 ~n_labels:3
      ~domain:30 ~max_len:8 ()
  in
  let inc = Incremental.create ~merge_threshold:7 g in
  let rng = Random.State.make [| 43 |] in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 5 25)
  in
  for round = 1 to 5 do
    List.iter
      (fun (src, dst, lbl, ts, te) ->
        ignore (Incremental.add_edge inc ~src ~dst ~lbl ~ts ~te))
      (random_extra rng 5 ~n_vertices:5 ~n_labels:3 ~domain:30);
    let expected =
      Match_result.Result_set.of_list (Naive.evaluate (Incremental.graph inc) q)
    in
    let actual =
      Match_result.Result_set.of_list (Incremental.evaluate inc q)
    in
    match Match_result.Result_set.diff_summary ~expected ~actual with
    | None -> ()
    | Some diff -> Alcotest.failf "round %d: %s" round diff
  done;
  Alcotest.(check int) "all edges present" (40 + 25)
    (Incremental.n_edges inc)

let test_incremental_threshold () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let inc = Incremental.create ~merge_threshold:3 g in
  ignore (Incremental.add_edge inc ~src:0 ~dst:1 ~lbl:0 ~ts:1 ~te:2);
  ignore (Incremental.add_edge inc ~src:1 ~dst:0 ~lbl:0 ~ts:2 ~te:3);
  Alcotest.(check int) "buffered" 2 (Incremental.pending inc);
  ignore (Incremental.add_edge inc ~src:0 ~dst:0 ~lbl:0 ~ts:3 ~te:4);
  Alcotest.(check int) "auto-merged" 0 (Incremental.pending inc);
  Alcotest.(check int) "ids dense" 4 (Incremental.n_edges inc)

let prop_merge_equals_rebuild =
  QCheck.Test.make ~name:"Tai.merge = rebuild (query results)" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 1 30))
    (fun (seed, n_extra) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:40 ~n_labels:3
          ~domain:30 ~max_len:8 ()
      in
      let tai = Tai.build g in
      let rng = Random.State.make [| seed; 77 |] in
      let g' =
        Tgraph.Graph.append g
          (random_extra rng n_extra ~n_vertices:5 ~n_labels:3 ~domain:30)
      in
      let merged = Tai.merge tai g' in
      List.for_all
        (fun q ->
          Match_result.Result_set.equal
            (Match_result.Result_set.of_list (Tsrjoin.evaluate (Tai.build g') q))
            (Match_result.Result_set.of_list (Tsrjoin.evaluate merged q)))
        (Test_util.query_pool ~n_labels:3 ~window:(window 5 22)))

(* the streaming ingest path end to end: adopt a prefix TAI with
   [of_tai] under a random merge threshold, feed random batch splits,
   refresh with [prepare_with_tai], and demand every engine variant
   agrees with a from-scratch [prepare] at every batch boundary *)
let prop_streaming_engine_equals_rebuild =
  QCheck.Test.make
    ~name:"of_tai + prepare_with_tai = full rebuild (all methods)" ~count:20
    QCheck.(
      triple (int_range 0 10_000) (int_range 1 8) (int_range 1 4))
    (fun (seed, merge_threshold, n_batches) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:25 ~n_labels:3
          ~domain:30 ~max_len:8 ()
      in
      let inc = Incremental.of_tai ~merge_threshold g (Tai.build g) in
      let rng = Random.State.make [| seed; 91 |] in
      let queries = Test_util.query_pool ~n_labels:3 ~window:(window 5 22) in
      let agree () =
        let g' = Incremental.graph inc in
        let streamed =
          Workload.Engine.prepare_with_tai g' (Incremental.tai inc)
        in
        let rebuilt = Workload.Engine.prepare g' in
        List.for_all
          (fun q ->
            Array.for_all
              (fun m ->
                Match_result.Result_set.equal
                  (Match_result.Result_set.of_list
                     (Workload.Engine.evaluate rebuilt m q))
                  (Match_result.Result_set.of_list
                     (Workload.Engine.evaluate streamed m q)))
              Workload.Engine.all_methods)
          queries
      in
      List.for_all
        (fun _ ->
          List.iter
            (fun (src, dst, lbl, ts, te) ->
              ignore (Incremental.add_edge inc ~src ~dst ~lbl ~ts ~te))
            (random_extra rng
               (1 + Random.State.int rng 7)
               ~n_vertices:5 ~n_labels:3 ~domain:30);
          agree ())
        (List.init n_batches Fun.id))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "incremental"
    [
      ( "append",
        [ Alcotest.test_case "basics" `Quick test_append_basics ] );
      ( "merge",
        [
          Alcotest.test_case "equals rebuild (structure)" `Quick test_merge_equals_rebuild;
          Alcotest.test_case "rejects non-extensions" `Quick test_merge_rejects_non_extension;
          Alcotest.test_case "no-op merge" `Quick test_merge_noop;
        ] );
      ( "wrapper",
        [
          Alcotest.test_case "query correctness across rounds" `Quick
            test_incremental_query_correctness;
          Alcotest.test_case "threshold behaviour" `Quick test_incremental_threshold;
        ] );
      qsuite "properties"
        [ prop_merge_equals_rebuild; prop_streaming_engine_equals_rebuild ];
    ]
