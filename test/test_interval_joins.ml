(* Tests for the interval-join algorithms: EBI sweep, forward scan, STI,
   and STI-CP clique production, each cross-checked against brute
   force. *)

open Temporal

let items_of l =
  Array.of_list
    (List.map (fun (id, a, b) -> Span_item.make id (Interval.make a b)) l)

let rel l = Relation.of_items (items_of l)

let pairs_of_join join l r =
  let acc = ref [] in
  let _ = join l r ~f:(fun a b -> acc := (Span_item.id a, Span_item.id b) :: !acc) in
  List.sort compare !acc

let brute_pairs l r =
  let acc = ref [] in
  Relation.iter
    (fun a ->
      Relation.iter
        (fun b ->
          if Interval.overlaps (Span_item.ivl a) (Span_item.ivl b) then
            acc := (Span_item.id a, Span_item.id b) :: !acc)
        r)
    l;
  List.sort compare !acc

let test_sweep_small () =
  let l = rel [ (0, 1, 5); (1, 4, 8) ] and r = rel [ (10, 5, 6); (11, 9, 9) ] in
  Alcotest.(check (list (pair int int)))
    "pairs"
    [ (0, 10); (1, 10) ]
    (pairs_of_join (fun l r ~f -> Sweep_join.join l r ~f) l r)

let test_sweep_empty () =
  Alcotest.(check int) "left empty" 0 (Sweep_join.count Relation.empty (rel [ (0, 1, 2) ]));
  Alcotest.(check int) "right empty" 0 (Sweep_join.count (rel [ (0, 1, 2) ]) Relation.empty)

let test_forward_scan_small () =
  let l = rel [ (0, 1, 5); (1, 4, 8) ] and r = rel [ (10, 5, 6); (11, 9, 9) ] in
  Alcotest.(check (list (pair int int)))
    "pairs"
    [ (0, 10); (1, 10) ]
    (pairs_of_join Forward_scan.join l r)

let gen_rel =
  QCheck.Gen.(
    list_size (int_range 0 30)
      (pair (int_range 0 50) (int_range 0 10) >|= fun (s, d) -> (s, s + d)))

let arb_two_rels =
  QCheck.make
    QCheck.Gen.(pair gen_rel gen_rel)
    ~print:(fun (a, b) ->
      let s l = String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "[%d,%d]" x y) l) in
      s a ^ " | " ^ s b)

let mk_rel spans = rel (List.mapi (fun i (a, b) -> (i, a, b)) spans)

let prop_sweep_matches_brute =
  QCheck.Test.make ~name:"EBI sweep = brute force" ~count:300 arb_two_rels
    (fun (a, b) ->
      let l = mk_rel a and r = mk_rel b in
      pairs_of_join (fun l r ~f -> Sweep_join.join l r ~f) l r = brute_pairs l r)

let prop_fs_matches_brute =
  QCheck.Test.make ~name:"forward scan = brute force" ~count:300 arb_two_rels
    (fun (a, b) ->
      let l = mk_rel a and r = mk_rel b in
      pairs_of_join Forward_scan.join l r = brute_pairs l r)

let prop_fs_equals_sweep =
  QCheck.Test.make ~name:"forward scan = EBI sweep" ~count:300 arb_two_rels
    (fun (a, b) ->
      let l = mk_rel a and r = mk_rel b in
      Sweep_join.count l r = Forward_scan.count l r)

let test_sweep_window () =
  let l = rel [ (0, 0, 3); (1, 10, 12) ] and r = rel [ (10, 2, 11) ] in
  (* pair (0,10) overlaps on [2,3], outside window [10,20]; (1,10)
     overlaps on [10,11], inside *)
  let acc = ref [] in
  let _ =
    Sweep_join.join_window l r ~ws:10 ~we:20 ~f:(fun a b ->
        acc := (Span_item.id a, Span_item.id b) :: !acc)
  in
  Alcotest.(check (list (pair int int))) "window filter" [ (1, 10) ] !acc

(* ---------- STI ---------- *)

let test_sti_scan_range_skips () =
  (* Relation: [0,2] [1,9] [3,4] [12,14]. Window [8,13]: eC(8) = 1, so the
     scan starts at the edge starting at 1 (index 1), skipping [0,2]. *)
  let r = rel [ (0, 0, 2); (1, 1, 9); (2, 3, 4); (3, 12, 14) ] in
  let sti = Sti.build r in
  let start, stop = Sti.scan_range sti ~ws:8 ~we:13 in
  Alcotest.(check int) "start skips dead prefix" 1 start;
  Alcotest.(check int) "stop after last in-window start" 4 stop

let test_sti_scan_range_gap () =
  (* Nothing alive at ws: scan starts at the first later edge. *)
  let r = rel [ (0, 0, 2); (1, 10, 11) ] in
  let sti = Sti.build r in
  let start, stop = Sti.scan_range sti ~ws:5 ~we:20 in
  Alcotest.(check int) "start" 1 start;
  Alcotest.(check int) "stop" 2 stop

let test_sti_dead_relation () =
  let r = rel [ (0, 0, 2) ] in
  let sti = Sti.build r in
  let start, stop = Sti.scan_range sti ~ws:5 ~we:20 in
  Alcotest.(check int) "empty range" 0 (stop - start)

let brute_window items ~ws ~we =
  Array.to_list items
  |> List.filter (fun it -> Interval.overlaps_window (Span_item.ivl it) ~ws ~we)
  |> List.map Span_item.id
  |> List.sort compare

let prop_sti_enum_window =
  QCheck.Test.make ~name:"STI window enumeration = brute force" ~count:300
    QCheck.(pair (make gen_rel) (pair (int_range 0 50) (int_range 0 20)))
    (fun (spans, (ws, width)) ->
      let items = items_of (List.mapi (fun i (a, b) -> (i, a, b)) spans) in
      Span_item.sort_by_start items;
      let sti = Sti.build (Relation.of_sorted items) in
      let we = ws + width in
      let acc = ref [] in
      let _ = Sti.enum_window sti ~ws ~we ~f:(fun it -> acc := Span_item.id it :: !acc) in
      List.sort compare !acc = brute_window items ~ws ~we)

(* ---------- STI-CP clique production ---------- *)

let brute_cliques rels ~ws ~we =
  (* all k-tuples with non-empty joint overlap, each member overlapping
     the window *)
  let k = Array.length rels in
  let acc = ref [] in
  let rec go i chosen life =
    if i = k then acc := List.rev chosen :: !acc
    else
      Relation.iter
        (fun it ->
          if Interval.overlaps_window (Span_item.ivl it) ~ws ~we then
            match Interval.intersect life (Span_item.ivl it) with
            | Some life' -> go (i + 1) (Span_item.id it :: chosen) life'
            | None -> ())
        rels.(i)
  in
  go 0 [] (Interval.make min_int max_int);
  List.sort compare !acc

let cliques_of_enum stis ~ws ~we =
  let acc = ref [] in
  let outcome =
    Clique.enumerate stis ~ws ~we
      ~f:(fun members _life ->
        acc := Array.to_list (Array.map Span_item.id members) :: !acc)
      ()
  in
  (match outcome with
  | Clique.Complete _ -> ()
  | Clique.Truncated _ -> Alcotest.fail "unexpected truncation");
  List.sort compare !acc

let test_clique_example () =
  (* G1-flavoured: three relations; only one triple jointly overlaps in
     window [10,20]. *)
  let r1 = rel [ (1, 0, 5); (2, 6, 9); (3, 11, 12); (4, 13, 15); (5, 18, 19) ] in
  let r2 = rel [ (6, 2, 4); (7, 7, 10); (8, 13, 15); (9, 17, 18); (10, 19, 20) ] in
  let r3 = rel [ (11, 3, 6); (12, 15, 16) ] in
  let stis = Array.map Sti.build [| r1; r2; r3 |] in
  Alcotest.(check (list (list int)))
    "single clique"
    [ [ 4; 8; 12 ] ]
    (cliques_of_enum stis ~ws:10 ~we:20)

let test_clique_limit () =
  let r = rel [ (0, 0, 10); (1, 0, 10); (2, 0, 10) ] in
  let stis = [| Sti.build r; Sti.build r |] in
  match Clique.count stis ~ws:0 ~we:10 ~limit:4 () with
  | Clique.Truncated n -> Alcotest.(check int) "truncated at limit" 4 n
  | Clique.Complete n -> Alcotest.failf "expected truncation, got complete %d" n

let arb_three_rels =
  QCheck.make
    QCheck.Gen.(
      triple
        (list_size (int_range 0 8)
           (pair (int_range 0 30) (int_range 0 8) >|= fun (s, d) -> (s, s + d)))
        (list_size (int_range 0 8)
           (pair (int_range 0 30) (int_range 0 8) >|= fun (s, d) -> (s, s + d)))
        (list_size (int_range 0 8)
           (pair (int_range 0 30) (int_range 0 8) >|= fun (s, d) -> (s, s + d))))
    ~print:(fun (a, b, c) ->
      let s l = String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "[%d,%d]" x y) l) in
      s a ^ " | " ^ s b ^ " | " ^ s c)

let prop_clique_matches_brute =
  QCheck.Test.make ~name:"STI-CP cliques = brute force" ~count:200
    QCheck.(pair arb_three_rels (int_range 0 25))
    (fun ((a, b, c), ws) ->
      let next_id = ref 0 in
      let mk spans =
        rel
          (List.map
             (fun (x, y) ->
               incr next_id;
               (!next_id, x, y))
             spans)
      in
      let rels = [| mk a; mk b; mk c |] in
      let stis = Array.map Sti.build rels in
      let we = ws + 10 in
      cliques_of_enum stis ~ws ~we = brute_cliques rels ~ws ~we)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "interval_joins"
    [
      ( "sweep",
        [
          Alcotest.test_case "small" `Quick test_sweep_small;
          Alcotest.test_case "empty sides" `Quick test_sweep_empty;
          Alcotest.test_case "window filter" `Quick test_sweep_window;
        ] );
      ("forward_scan", [ Alcotest.test_case "small" `Quick test_forward_scan_small ]);
      ( "sti",
        [
          Alcotest.test_case "scan_range skips dead prefix" `Quick test_sti_scan_range_skips;
          Alcotest.test_case "scan_range over gap" `Quick test_sti_scan_range_gap;
          Alcotest.test_case "dead relation" `Quick test_sti_dead_relation;
        ] );
      ( "clique",
        [
          Alcotest.test_case "paper-shaped example" `Quick test_clique_example;
          Alcotest.test_case "limit truncates" `Quick test_clique_limit;
        ] );
      qsuite "join-properties"
        [ prop_sweep_matches_brute; prop_fs_matches_brute; prop_fs_equals_sweep ];
      qsuite "sti-properties" [ prop_sti_enum_window ];
      qsuite "clique-properties" [ prop_clique_matches_brute ];
    ]
