(* Cross-cutting semantic invariants of temporal-clique matching,
   property-tested through the TSRJoin engine (whose equivalence with the
   other engines is established elsewhere). *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b

let graph_of seed =
  Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:60 ~n_labels:3
    ~domain:40 ~max_len:10 ()

let prop_window_monotone =
  QCheck.Test.make ~name:"matches grow monotonically with the window"
    ~count:60
    QCheck.(triple (int_range 0 10_000) (int_range 0 35) (int_range 0 10))
    (fun (seed, ws, pad) ->
      let g = graph_of seed in
      let tai = Tai.build g in
      let q lbls w =
        Query.make ~n_vars:3 ~edges:lbls ~window:w
      in
      let edges = [ (0, 0, 1); (1, 1, 2) ] in
      let narrow =
        Match_result.Result_set.of_list
          (Tsrjoin.evaluate tai (q edges (window ws (ws + 4))))
      in
      let wide =
        Match_result.Result_set.of_list
          (Tsrjoin.evaluate tai (q edges (window (max 0 (ws - pad)) (ws + 4 + pad))))
      in
      (* every narrow match appears among the wide matches *)
      List.for_all
        (fun m ->
          List.exists
            (fun m' -> Match_result.compare m m' = 0)
            (Match_result.Result_set.to_list wide))
        (Match_result.Result_set.to_list narrow))

let prop_lifespan_inside_members =
  QCheck.Test.make ~name:"lifespan = intersection of member intervals"
    ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = graph_of seed in
      let tai = Tai.build g in
      List.for_all
        (fun q ->
          List.for_all
            (fun m ->
              match Match_result.life_of_edges g m.Match_result.edges with
              | Some life -> Temporal.Interval.equal life m.Match_result.life
              | None -> false)
            (Tsrjoin.evaluate tai q))
        (Test_util.query_pool ~n_labels:3 ~window:(window 8 30)))

let prop_irrelevant_edges_do_not_change_results =
  QCheck.Test.make
    ~name:"edges outside the window leave the result set unchanged" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 1 10))
    (fun (seed, n_extra) ->
      let g = graph_of seed in
      let tai = Tai.build g in
      (* all pool windows lie within [5, 30]; adding edges at t >= 100
         (outside both the window and every existing interval) must not
         change any result *)
      let rng = Random.State.make [| seed; 3 |] in
      let g' =
        Tgraph.Graph.append g
          (List.init n_extra (fun _ ->
               let ts = 100 + Random.State.int rng 50 in
               ( Random.State.int rng 6,
                 Random.State.int rng 6,
                 Random.State.int rng 3,
                 ts,
                 ts + Random.State.int rng 10 )))
      in
      let tai' = Tai.build g' in
      List.for_all
        (fun q ->
          Match_result.Result_set.equal
            (Match_result.Result_set.of_list (Tsrjoin.evaluate tai q))
            (Match_result.Result_set.of_list (Tsrjoin.evaluate tai' q)))
        (Test_util.query_pool ~n_labels:3 ~window:(window 8 30)))

let prop_edge_order_permutation =
  QCheck.Test.make ~name:"query-edge order does not affect the match set"
    ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = graph_of seed in
      let tai = Tai.build g in
      let w = window 8 30 in
      let q1 =
        Query.make ~n_vars:3
          ~edges:[ (0, 0, 1); (1, 1, 2); (2, 2, 0) ]
          ~window:w
      in
      let q2 =
        Query.make ~n_vars:3
          ~edges:[ (2, 2, 0); (0, 0, 1); (1, 1, 2) ]
          ~window:w
      in
      (* compare as (sorted edge multiset, lifespan) pairs *)
      let canon q =
        Tsrjoin.evaluate tai q
        |> List.map (fun m ->
               ( List.sort compare (Array.to_list m.Match_result.edges),
                 Temporal.Interval.ts m.Match_result.life,
                 Temporal.Interval.te m.Match_result.life ))
        |> List.sort compare
      in
      canon q1 = canon q2)

let prop_deterministic =
  QCheck.Test.make ~name:"evaluation is deterministic" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = graph_of seed in
      let tai = Tai.build g in
      List.for_all
        (fun q ->
          let a = Tsrjoin.evaluate tai q in
          let b = Tsrjoin.evaluate tai q in
          List.length a = List.length b
          && List.for_all2 (fun x y -> Match_result.compare x y = 0) a b)
        (Test_util.query_pool ~n_labels:3 ~window:(window 8 30)))

let prop_double_star_symmetry =
  QCheck.Test.make
    ~name:"double-star matches are center-swap symmetric (same labels)"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = graph_of seed in
      let tai = Tai.build g in
      let q =
        Pattern.instantiate (Pattern.Double_star 2) ~labels:[| 0; 1; 0; 1 |]
          ~window:(window 5 30)
      in
      (* swapping the two centers maps matches onto matches: edge slots
         (0,1) and (2,3) swap *)
      let ms = Tsrjoin.evaluate tai q in
      let key m =
        ( m.Match_result.edges.(0), m.Match_result.edges.(1),
          m.Match_result.edges.(2), m.Match_result.edges.(3) )
      in
      let module S = Set.Make (struct
        type t = int * int * int * int

        let compare = compare
      end) in
      let set = S.of_list (List.map key ms) in
      S.for_all (fun (a, b, c, d) -> S.mem (c, d, a, b) set) set)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "invariants"
    [
      qsuite "semantic-invariants"
        [
          prop_window_monotone;
          prop_lifespan_inside_members;
          prop_irrelevant_edges_do_not_change_results;
          prop_edge_order_permutation;
          prop_deterministic;
          prop_double_star_symmetry;
        ];
    ]
