(* Tests for LFTO (Algorithm 1) and its optimized variant (Algorithms
   2-4): brute-force ground truth, equivalence across every optimization
   flag combination, and the skip behaviours on the paper-shaped
   fixture. *)

open Tcsq_core
open Tgraph

let interval = Alcotest.testable Temporal.Interval.pp Temporal.Interval.equal

(* Build a TSR (with coverage) from (id, ts, te) triples; ids must be
   distinct across TSRs of one test. *)
let tsr_of triples =
  let edges =
    Array.of_list
      (List.map
         (fun (id, ts, te) ->
           Edge.make ~id ~src:0 ~dst:id ~lbl:0 (Temporal.Interval.make ts te))
         triples)
  in
  Array.sort Edge.compare_by_start edges;
  let coverage = Temporal.Coverage.build (Array.map Edge.to_span edges) in
  Tsr.make ~coverage (Triejoin.Slice.full edges)

let collect_basic tsrs ~ws ~we =
  let acc = ref [] in
  Lfto.run ~tsrs ~ws ~we
    ~emit:(fun members life ->
      acc := (Array.to_list (Array.map Edge.id members), life) :: !acc)
    ();
  List.sort compare !acc

let collect_opt config tsrs ~ws ~we =
  let acc = ref [] in
  Lfto_opt.run ~config ~tsrs ~ws ~we
    ~emit:(fun members life ->
      acc := (Array.to_list (Array.map Edge.id members), life) :: !acc)
    ();
  List.sort compare !acc

let brute tsrs ~ws ~we =
  let k = Array.length tsrs in
  let acc = ref [] in
  let rec go i chosen life =
    if i = k then acc := (List.rev chosen, Option.get life) :: !acc
    else
      Tsr.iter
        (fun e ->
          if Temporal.Interval.overlaps_window (Edge.ivl e) ~ws ~we then
            let life' =
              match life with
              | None -> Some (Edge.ivl e)
              | Some l -> Temporal.Interval.intersect l (Edge.ivl e)
            in
            match life' with
            | Some _ -> go (i + 1) (Edge.id e :: chosen) life'
            | None -> ())
        tsrs.(i)
  in
  go 0 [] None;
  List.sort compare !acc

let all_configs =
  [
    Lfto_opt.all_off;
    { Lfto_opt.use_eci = true; use_del_skip = false; use_lazy = false };
    { Lfto_opt.use_eci = false; use_del_skip = true; use_lazy = false };
    { Lfto_opt.use_eci = false; use_del_skip = false; use_lazy = true };
    { Lfto_opt.use_eci = true; use_del_skip = true; use_lazy = false };
    { Lfto_opt.use_eci = true; use_del_skip = false; use_lazy = true };
    { Lfto_opt.use_eci = false; use_del_skip = true; use_lazy = true };
    Lfto_opt.all_on;
  ]

(* The G1-shaped fixture of the paper's running example: three TSRs, one
   produced match (e4, e8, e12, [15, 15]) in window [10, 20]. *)
let g1_r1 = [ (1, 0, 5); (2, 6, 9); (3, 11, 12); (4, 13, 15); (5, 18, 19) ]
let g1_r2 = [ (6, 2, 4); (7, 7, 10); (8, 13, 15); (9, 17, 18); (10, 19, 20) ]
let g1_r3 = [ (11, 3, 6); (12, 15, 16) ]
let g1_tsrs () = [| tsr_of g1_r1; tsr_of g1_r2; tsr_of g1_r3 |]

let test_basic_paper_example () =
  match collect_basic (g1_tsrs ()) ~ws:10 ~we:20 with
  | [ (ids, life) ] ->
      Alcotest.(check (list int)) "members" [ 4; 8; 12 ] ids;
      Alcotest.check interval "lifespan" (Temporal.Interval.make 15 15) life
  | other -> Alcotest.failf "expected exactly one match, got %d" (List.length other)

let test_basic_matches_brute () =
  let tsrs = g1_tsrs () in
  Alcotest.(check bool) "equal" true
    (collect_basic tsrs ~ws:10 ~we:20 = brute tsrs ~ws:10 ~we:20)

let test_opt_all_configs_paper_example () =
  let expected = collect_basic (g1_tsrs ()) ~ws:10 ~we:20 in
  List.iteri
    (fun i config ->
      Alcotest.(check bool)
        (Printf.sprintf "config %d equals basic" i)
        true
        (collect_opt config (g1_tsrs ()) ~ws:10 ~we:20 = expected))
    all_configs

let test_optimize_start_point_skips_backward () =
  (* Algorithm 2 on the fixture: all three scanners should start at the
     earliest concurrent of the first jointly-covered time >= 10, i.e.
     at e4 (13), e8 (13), e12 (15), skipping e1, e6, e11, e2, e7, e3. *)
  match Lfto_opt.optimize_start_point (g1_tsrs ()) ~ws:10 with
  | None -> Alcotest.fail "expected a start point"
  | Some starts ->
      Alcotest.(check (array int)) "start times" [| 13; 13; 15 |] starts

let test_optimize_start_point_none () =
  (* relations die out before the window: provably no match *)
  let tsrs = [| tsr_of [ (1, 0, 5) ]; tsr_of [ (2, 0, 9) ] |] in
  Alcotest.(check bool) "no start point" true
    (Lfto_opt.optimize_start_point tsrs ~ws:50 = None)

let test_opt_scans_fewer_edges () =
  let scanned config =
    let stats = Semantics.Run_stats.create () in
    Lfto_opt.run ~stats ~config ~tsrs:(g1_tsrs ()) ~ws:10 ~we:20
      ~emit:(fun _ _ -> ())
      ();
    stats.Semantics.Run_stats.scanned
  in
  let baseline = scanned Lfto_opt.all_off in
  let optimized = scanned Lfto_opt.all_on in
  Alcotest.(check int) "baseline scans all 12 edges" 12 baseline;
  (* ECI skips the 6 backward edges; delSkip cuts forward edges (e10). *)
  Alcotest.(check bool)
    (Printf.sprintf "optimized scans fewer (%d < %d)" optimized baseline)
    true (optimized < baseline);
  Alcotest.(check bool) "optimized scans at most 5" true (optimized <= 5)

let test_del_skip_aborts () =
  (* With only the forward cut on: the sweep stops once relation 3 is
     exhausted and its active list empties. *)
  let events = ref [] in
  let config = { Lfto_opt.use_eci = false; use_del_skip = true; use_lazy = true } in
  Lfto_opt.run ~config
    ~trace:(fun ev -> events := ev :: !events)
    ~tsrs:(g1_tsrs ()) ~ws:10 ~we:20
    ~emit:(fun _ _ -> ())
    ();
  Alcotest.(check bool) "sweep aborted" true
    (List.exists (function Lfto.Sweep_aborted -> true | _ -> false) !events)

let test_window_straddlers_only () =
  (* all edges start before the window but live into it: the transition
     flush must still produce the combination *)
  let tsrs = [| tsr_of [ (1, 0, 12) ]; tsr_of [ (2, 3, 15) ] |] in
  let expected = [ ([ 1; 2 ], Temporal.Interval.make 3 12) ] in
  Alcotest.(check bool) "basic" true (collect_basic tsrs ~ws:10 ~we:20 = expected);
  List.iter
    (fun config ->
      Alcotest.(check bool) "optimized" true
        (collect_opt config tsrs ~ws:10 ~we:20 = expected))
    all_configs

let test_single_relation () =
  let tsrs = [| tsr_of [ (1, 0, 5); (2, 8, 12); (3, 30, 31) ] |] in
  let got = collect_basic tsrs ~ws:10 ~we:20 in
  Alcotest.(check bool) "singleton combos" true
    (got = [ ([ 2 ], Temporal.Interval.make 8 12) ])

let test_empty_relation () =
  let tsrs = [| tsr_of [ (1, 0, 5) ]; Tsr.empty |] in
  Alcotest.(check (list (pair (list int) interval)))
    "no combos" [] (collect_basic tsrs ~ws:0 ~we:10);
  List.iter
    (fun config ->
      Alcotest.(check (list (pair (list int) interval)))
        "no combos opt" []
        (collect_opt config tsrs ~ws:0 ~we:10))
    all_configs

(* ---------- randomized equivalence ---------- *)

let gen_tsr_spans =
  QCheck.Gen.(
    list_size (int_range 0 12)
      (pair (int_range 0 40) (int_range 0 10) >|= fun (s, d) -> (s, s + d)))

let arb_case =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 1 4) gen_tsr_spans)
        (pair (int_range 0 35) (int_range 0 15)))
    ~print:(fun (rels, (ws, width)) ->
      let s l = String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "[%d,%d]" a b) l) in
      Printf.sprintf "%s @ [%d,%d]" (String.concat " | " (List.map s rels)) ws (ws + width))

let make_case (rels, (ws, width)) =
  let next = ref 0 in
  let tsrs =
    Array.of_list
      (List.map
         (fun spans ->
           tsr_of
             (List.map
                (fun (a, b) ->
                  incr next;
                  (!next, a, b))
                spans))
         rels)
  in
  (tsrs, ws, ws + width)

let prop_basic_matches_brute =
  QCheck.Test.make ~name:"LFTO basic = brute force" ~count:400 arb_case
    (fun case ->
      let tsrs, ws, we = make_case case in
      collect_basic tsrs ~ws ~we = brute tsrs ~ws ~we)

let prop_opt_matches_basic =
  QCheck.Test.make ~name:"optimized LFTO = basic (all flag combos)"
    ~count:250 arb_case (fun case ->
      let tsrs, ws, we = make_case case in
      let expected = collect_basic tsrs ~ws ~we in
      List.for_all
        (fun config -> collect_opt config tsrs ~ws ~we = expected)
        all_configs)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lfto"
    [
      ( "basic",
        [
          Alcotest.test_case "paper example" `Quick test_basic_paper_example;
          Alcotest.test_case "matches brute force" `Quick test_basic_matches_brute;
          Alcotest.test_case "single relation" `Quick test_single_relation;
          Alcotest.test_case "empty relation" `Quick test_empty_relation;
        ] );
      ( "optimized",
        [
          Alcotest.test_case "all configs on paper example" `Quick
            test_opt_all_configs_paper_example;
          Alcotest.test_case "Algorithm 2 skips backward edges" `Quick
            test_optimize_start_point_skips_backward;
          Alcotest.test_case "Algorithm 2 proves emptiness" `Quick
            test_optimize_start_point_none;
          Alcotest.test_case "scans fewer edges" `Quick test_opt_scans_fewer_edges;
          Alcotest.test_case "delSkip aborts" `Quick test_del_skip_aborts;
          Alcotest.test_case "window straddlers" `Quick test_window_straddlers_only;
        ] );
      qsuite "properties" [ prop_basic_matches_brute; prop_opt_matches_basic ];
    ]
