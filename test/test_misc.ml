(* Coverage sweep for modules whose behaviour is otherwise only
   exercised indirectly: Volcano overflow behaviour, Sti_index lookups,
   Time_pipeline expansion orders, Json_out encoding, Runner CSV,
   Engine method parsing, Durable helpers. *)

open Semantics

let window a b = Temporal.Interval.make a b

(* ---------- Volcano overflow ---------- *)

let mk_tuple q i =
  let t = Relops.Tuple.initial q in
  t.Relops.Tuple.binds.(0) <- i;
  t

let test_volcano_overflow_rebatching () =
  (* a flat_map producing 3000 outputs from one input must split them
     into <= 1024-tuple batches *)
  let q = Query.make ~n_vars:1 ~edges:[ (0, 0, 0) ] ~window:(window 0 1) in
  let op =
    Relops.Volcano.source (List.to_seq [ mk_tuple q 0 ])
    |> Relops.Volcano.flat_map (fun t -> List.init 3000 (fun _ -> t))
  in
  let sizes = ref [] in
  let rec go () =
    match Relops.Volcano.next op with
    | None -> ()
    | Some b ->
        sizes := Array.length b :: !sizes;
        go ()
  in
  go ();
  Alcotest.(check int) "total" 3000 (List.fold_left ( + ) 0 !sizes);
  Alcotest.(check bool) "all bounded" true
    (List.for_all (fun s -> s <= Relops.Volcano.batch_size) !sizes);
  Alcotest.(check int) "batch count" 3 (List.length !sizes)

let test_volcano_empty_source () =
  let op = Relops.Volcano.source Seq.empty in
  Alcotest.(check bool) "none" true (Relops.Volcano.next op = None)

(* ---------- Sti_index ---------- *)

let test_sti_index () =
  let g =
    Tgraph.Graph.of_edge_list
      [ (0, 1, 0, 0, 5); (1, 2, 1, 3, 8); (2, 0, 0, 6, 9) ]
  in
  let idx = Relops.Sti_index.build g in
  Alcotest.(check int) "label 0 relation" 2
    (Temporal.Sti.length (Relops.Sti_index.sti idx ~lbl:0));
  Alcotest.(check int) "label 1 relation" 1
    (Temporal.Sti.length (Relops.Sti_index.sti idx ~lbl:1));
  Alcotest.(check int) "unknown label" 0
    (Temporal.Sti.length (Relops.Sti_index.sti idx ~lbl:7));
  Alcotest.(check bool) "size accounted" true (Relops.Sti_index.size_words idx > 0);
  let item = Temporal.Span_item.make 1 (window 3 8) in
  Alcotest.(check int) "edge resolution" 1
    (Tgraph.Edge.id (Relops.Sti_index.edge_of_item idx item))

(* ---------- Json_out ---------- *)

let test_json_escaping () =
  Alcotest.(check string) "plain" "\"abc\"" (Json_out.escape_string "abc");
  Alcotest.(check string) "quotes and backslash" "\"a\\\"b\\\\c\""
    (Json_out.escape_string "a\"b\\c");
  Alcotest.(check string) "newline" "\"a\\nb\"" (Json_out.escape_string "a\nb");
  Alcotest.(check string) "control char" "\"\\u0001\""
    (Json_out.escape_string "\001")

let test_json_match () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 2, 7) ] in
  let m = Match_result.make [| 0 |] (window 2 7) in
  let json = Json_out.match_to_json g m in
  Alcotest.(check bool) "mentions lifespan" true
    (Option.is_some
       (String.index_opt json 'l'));
  (* structural smoke checks: balanced braces/brackets *)
  let count c = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']');
  let arr = Json_out.matches_to_json g [ m; m ] in
  Alcotest.(check bool) "array form" true (arr.[0] = '[' && arr.[String.length arr - 1] = ']');
  Alcotest.(check string) "csv row" "0,2,7" (Json_out.match_to_csv m)

(* ---------- Runner CSV ---------- *)

let test_runner_csv () =
  let g =
    Test_util.random_graph ~seed:95 ~n_vertices:5 ~n_edges:50 ~n_labels:2
      ~domain:30 ~max_len:8 ()
  in
  let engine = Workload.Engine.prepare g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 29) in
  let meas = Workload.Runner.run_method engine Workload.Engine.Tsrjoin [ q; q ] in
  let row = Workload.Runner.to_csv_row ~tag:"t,x" meas in
  let fields = String.split_on_char ',' row in
  let header_fields =
    String.split_on_char ',' ("a,b," ^ Workload.Runner.csv_header)
  in
  Alcotest.(check int) "field count matches header" (List.length header_fields)
    (List.length fields);
  Alcotest.(check string) "method field" "tsrjoin" (List.nth fields 2);
  Alcotest.(check string) "query count" "2" (List.nth fields 3);
  (* percentiles are sane *)
  Alcotest.(check bool) "p50 <= p95" true
    (meas.Workload.Runner.p50_seconds <= meas.Workload.Runner.p95_seconds +. 1e-9)

(* ---------- method / dataset parsing ---------- *)

let test_method_parsing () =
  Alcotest.(check bool) "roundtrip" true
    (Array.for_all
       (fun m ->
         Workload.Engine.method_of_string (Workload.Engine.method_name m)
         = Some m)
       Workload.Engine.all_methods);
  Alcotest.(check bool) "alias" true
    (Workload.Engine.method_of_string "TSRJ" = Some Workload.Engine.Tsrjoin);
  Alcotest.(check bool) "unknown" true
    (Workload.Engine.method_of_string "quantum" = None)

(* ---------- Durable helper ---------- *)

let test_durability_helper () =
  let m = Match_result.make [| 0 |] (window 3 7) in
  Alcotest.(check int) "durability = length" 5 (Tcsq_core.Durable.durability m)

(* ---------- Slice / Tsr fringe ---------- *)

let test_tsr_of_edges_sorts () =
  let e i ts te =
    Tgraph.Edge.make ~id:i ~src:0 ~dst:i ~lbl:0 (window ts te)
  in
  let tsr = Tcsq_core.Tsr.of_edges [| e 0 5 9; e 1 1 2; e 2 3 3 |] in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 0 ]
    (List.map Tgraph.Edge.id (Tcsq_core.Tsr.to_list tsr));
  Alcotest.(check int) "lower bound" 1 (Tcsq_core.Tsr.lower_bound_start tsr 2);
  Alcotest.(check int) "upper bound" 2 (Tcsq_core.Tsr.upper_bound_start tsr 3);
  Alcotest.check_raises "make validates" (Invalid_argument "") (fun () ->
      try
        ignore
          (Tcsq_core.Tsr.make
             (Triejoin.Slice.full [| e 0 5 9; e 1 1 2 |]))
      with Invalid_argument _ -> raise (Invalid_argument ""))

let () =
  Alcotest.run "misc"
    [
      ( "volcano",
        [
          Alcotest.test_case "overflow rebatching" `Quick test_volcano_overflow_rebatching;
          Alcotest.test_case "empty source" `Quick test_volcano_empty_source;
        ] );
      ("sti_index", [ Alcotest.test_case "lookups" `Quick test_sti_index ]);
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "match serialization" `Quick test_json_match;
        ] );
      ("runner", [ Alcotest.test_case "csv rows" `Quick test_runner_csv ]);
      ("engine", [ Alcotest.test_case "method parsing" `Quick test_method_parsing ]);
      ("durable", [ Alcotest.test_case "durability" `Quick test_durability_helper ]);
      ("tsr", [ Alcotest.test_case "of_edges and bounds" `Quick test_tsr_of_edges_sorts ]);
    ]
