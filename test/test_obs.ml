(* Observability layer tests: differential traced-vs-untraced runs over
   every engine method, sink/trace unit behavior under a fake clock,
   Chrome trace export validity, the histogram's quantile error bound
   (QCheck, against the exact percentile estimator), and the percentile
   estimator's edge cases. *)

open Semantics

let window a b = Temporal.Interval.make a b
let live_sink () = Obs.Sink.create ~clock:Unix.gettimeofday ()

let test_graph () =
  Test_util.random_graph ~seed:41 ~n_vertices:6 ~n_edges:90 ~n_labels:3
    ~domain:40 ~max_len:10 ()

(* ---------- differential: instrumentation never changes results ---------- *)

let test_traced_equals_untraced () =
  let engine = Workload.Engine.prepare (test_graph ()) in
  let queries = Test_util.query_pool ~n_labels:3 ~window:(window 8 30) in
  Array.iter
    (fun m ->
      List.iteri
        (fun qi q ->
          let untraced = Workload.Engine.evaluate engine m q in
          let traced =
            Workload.Engine.evaluate ~obs:(live_sink ()) engine m q
          in
          Test_util.check_same_results
            ~msg:
              (Printf.sprintf "traced %s, query %d"
                 (Workload.Engine.method_name m) qi)
            untraced traced)
        queries)
    Workload.Engine.all_methods

let stats_fields s =
  Run_stats.
    [
      s.results; s.intermediate; s.scanned; s.bindings; s.enum_steps; s.seeks;
    ]

let test_sink_never_drifts_counters () =
  (* the same run with no sink, the null sink, and a live sink must tick
     the Run_stats counters identically *)
  let engine = Workload.Engine.prepare (test_graph ()) in
  let queries = Test_util.query_pool ~n_labels:3 ~window:(window 8 30) in
  Array.iter
    (fun m ->
      List.iteri
        (fun qi q ->
          let counters obs =
            let stats = Run_stats.create () in
            Workload.Engine.run ?obs ~stats engine m q ~emit:(fun _ -> ());
            stats_fields stats
          in
          let plain = counters None in
          let name = Workload.Engine.method_name m in
          Alcotest.(check (list int))
            (Printf.sprintf "null sink, %s, query %d" name qi)
            plain
            (counters (Some Obs.Sink.null));
          Alcotest.(check (list int))
            (Printf.sprintf "live sink, %s, query %d" name qi)
            plain
            (counters (Some (live_sink ()))))
        queries)
    Workload.Engine.all_methods

(* ---------- trace export: valid JSON, phase coverage, wall-clock ---------- *)

let test_trace_export () =
  let engine = Workload.Engine.prepare (test_graph ()) in
  let queries = Test_util.query_pool ~n_labels:3 ~window:(window 8 30) in
  let obs = live_sink () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun q ->
      Workload.Engine.run ~obs engine Workload.Engine.Tsrjoin q
        ~emit:(fun _ -> ()))
    queries;
  let wall = Unix.gettimeofday () -. t0 in
  (* the exported document is valid JSON with the trace/v1 shape *)
  let doc = Obs.Trace.to_chrome_json obs in
  (match Tcsq_server.Json.parse doc with
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  | Ok j -> (
      Alcotest.(check (option string))
        "schema" (Some "trace/v1")
        (Tcsq_server.Json.mem_string "schema" j);
      match Tcsq_server.Json.mem_list "traceEvents" j with
      | None -> Alcotest.fail "trace has no traceEvents"
      | Some evs ->
          (* metadata event + one complete event per buffered span *)
          Alcotest.(check int)
            "event count"
            (Obs.Sink.n_events obs + 1)
            (List.length evs)));
  (* a TSRJoin run exercises at least 5 distinct phases *)
  let rows = Obs.Trace.summary obs in
  Alcotest.(check bool)
    (Printf.sprintf "trace covers >= 5 phases (saw %d)" (List.length rows))
    true
    (List.length rows >= 5);
  List.iter
    (fun (r : Obs.Trace.row) ->
      if r.Obs.Trace.self_s > r.Obs.Trace.total_s +. 1e-9 then
        Alcotest.failf "self > total for %s" (Obs.Phase.name r.Obs.Trace.phase))
    rows;
  (* the top span covers the run: its total is within 10% of the
     wall-clock spent in the loop (which adds only loop overhead) *)
  let run_total = Obs.Sink.total obs Obs.Phase.Run in
  Alcotest.(check bool)
    (Printf.sprintf "run span (%.6fs) within 10%% of wall clock (%.6fs)"
       run_total wall)
    true
    (run_total <= wall +. 1e-9 && run_total >= 0.9 *. wall)

(* ---------- sink unit behavior (fake clock) ---------- *)

let test_null_sink_is_noop () =
  Alcotest.(check bool) "disabled" false (Obs.Sink.enabled Obs.Sink.null);
  Alcotest.(check int) "span is exactly f ()" 41
    (Obs.Sink.span Obs.Sink.null Obs.Phase.Run (fun () -> 41));
  Obs.Sink.incr Obs.Sink.null Obs.Phase.Leapfrog_seek;
  Obs.Sink.record_span Obs.Sink.null Obs.Phase.Request ~t0:0.0;
  Alcotest.(check int) "no counts" 0
    (Obs.Sink.count Obs.Sink.null Obs.Phase.Leapfrog_seek);
  Alcotest.(check int) "no events" 0 (Obs.Sink.n_events Obs.Sink.null);
  Alcotest.(check (float 0.0)) "clock never read" 0.0
    (Obs.Sink.now Obs.Sink.null)

let test_sink_fake_clock () =
  let t = ref 100.0 in
  let obs = Obs.Sink.create ~clock:(fun () -> !t) () in
  Obs.Sink.span obs Obs.Phase.Run (fun () ->
      t := !t +. 1.0;
      Obs.Sink.span obs Obs.Phase.Tai_probe (fun () -> t := !t +. 0.25));
  Alcotest.(check int) "run count" 1 (Obs.Sink.count obs Obs.Phase.Run);
  Alcotest.(check (float 1e-9)) "run total inclusive" 1.25
    (Obs.Sink.total obs Obs.Phase.Run);
  Alcotest.(check (float 1e-9)) "probe total" 0.25
    (Obs.Sink.total obs Obs.Phase.Tai_probe);
  (* spans are recorded even when the body raises *)
  (try
     Obs.Sink.span obs Obs.Phase.Parse (fun () ->
         t := !t +. 0.5;
         failwith "abort")
   with Failure _ -> ());
  Alcotest.(check int) "raised span counted" 1
    (Obs.Sink.count obs Obs.Phase.Parse);
  Alcotest.(check (float 1e-9)) "raised span timed" 0.5
    (Obs.Sink.total obs Obs.Phase.Parse);
  (* cross-scope spans via now/record_span *)
  let t0 = Obs.Sink.now obs in
  t := !t +. 2.0;
  Obs.Sink.record_span obs Obs.Phase.Request ~t0;
  Alcotest.(check (float 1e-9)) "record_span" 2.0
    (Obs.Sink.total obs Obs.Phase.Request);
  (* count-only ticks: no event, no time *)
  Obs.Sink.incr obs Obs.Phase.Leapfrog_seek;
  Obs.Sink.incr obs Obs.Phase.Leapfrog_seek;
  Alcotest.(check int) "incr ticks" 2
    (Obs.Sink.count obs Obs.Phase.Leapfrog_seek);
  Alcotest.(check (float 0.0)) "incr adds no time" 0.0
    (Obs.Sink.total obs Obs.Phase.Leapfrog_seek);
  Alcotest.(check int) "4 buffered events" 4 (Obs.Sink.n_events obs);
  (* self time: the nested probe is subtracted from the run's self *)
  let row phase =
    match
      List.find_opt
        (fun (r : Obs.Trace.row) -> r.Obs.Trace.phase = phase)
        (Obs.Trace.summary obs)
    with
    | Some r -> r
    | None -> Alcotest.failf "no summary row for %s" (Obs.Phase.name phase)
  in
  Alcotest.(check (float 1e-9)) "run self excludes child" 1.0
    (row Obs.Phase.Run).Obs.Trace.self_s;
  Alcotest.(check (float 1e-9)) "leaf self = total" 0.25
    (row Obs.Phase.Tai_probe).Obs.Trace.self_s;
  Alcotest.(check (float 1e-9)) "root = sum of top-level spans" 3.75
    (Obs.Trace.root_seconds obs)

let test_sink_bounded_buffer () =
  let t = ref 0.0 in
  let obs = Obs.Sink.create ~max_events:4 ~clock:(fun () -> !t) () in
  for _ = 1 to 10 do
    Obs.Sink.span obs Obs.Phase.Tsr_slice (fun () -> t := !t +. 0.125)
  done;
  Alcotest.(check int) "buffer capped" 4 (Obs.Sink.n_events obs);
  Alcotest.(check int) "overflow counted" 6 (Obs.Sink.dropped obs);
  (* aggregates never drop *)
  Alcotest.(check int) "aggregate count exact" 10
    (Obs.Sink.count obs Obs.Phase.Tsr_slice);
  Alcotest.(check (float 1e-9)) "aggregate total exact" 1.25
    (Obs.Sink.total obs Obs.Phase.Tsr_slice);
  let doc = Obs.Trace.to_chrome_json obs in
  match Tcsq_server.Json.parse doc with
  | Error msg -> Alcotest.failf "overflowed trace invalid: %s" msg
  | Ok j ->
      Alcotest.(check (option int))
        "droppedEvents exported" (Some 6)
        (Tcsq_server.Json.mem_int "droppedEvents" j)

let test_phase_indexing () =
  Alcotest.(check int) "n = |all|" Obs.Phase.n (Array.length Obs.Phase.all);
  Array.iteri
    (fun i p ->
      Alcotest.(check int) (Obs.Phase.name p) i (Obs.Phase.index p);
      Alcotest.(check bool) "of_index roundtrip" true (Obs.Phase.of_index i = p))
    Obs.Phase.all;
  let names = Array.to_list (Array.map Obs.Phase.name Obs.Phase.all) in
  Alcotest.(check int) "names distinct" Obs.Phase.n
    (List.length (List.sort_uniq compare names))

(* ---------- percentile estimator edge cases ---------- *)

let test_percentile_edges () =
  let pct = Workload.Runner.percentile in
  Alcotest.(check (float 0.0)) "empty" 0.0 (pct [||] 0.5);
  Alcotest.(check (float 0.0)) "singleton p0" 7.0 (pct [| 7.0 |] 0.0);
  Alcotest.(check (float 0.0)) "singleton p50" 7.0 (pct [| 7.0 |] 0.5);
  Alcotest.(check (float 0.0)) "singleton p100" 7.0 (pct [| 7.0 |] 1.0);
  let sorted = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "p0 = min" 1.0 (pct sorted 0.0);
  Alcotest.(check (float 0.0)) "p100 = max" 4.0 (pct sorted 1.0);
  (* rank convention: index floor(q * (n-1)) *)
  Alcotest.(check (float 0.0)) "p50 of 4" 2.0 (pct sorted 0.5);
  Alcotest.(check (float 0.0)) "p95 of 4" 3.0 (pct sorted 0.95)

(* ---------- histogram ---------- *)

let test_histogram_exact_moments () =
  let h = Obs.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0
    (Obs.Histogram.quantile h 0.5);
  List.iter (Obs.Histogram.record h) [ 0.001; 0.002; 0.004; 1.0 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum exact" 1.007 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-12)) "mean exact" (1.007 /. 4.0)
    (Obs.Histogram.mean h)

let test_histogram_out_of_range () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h 1e-9;
  (* below 1e-6: underflow *)
  Obs.Histogram.record h 1e9;
  (* above 1e3: overflow *)
  Alcotest.(check int) "count stays exact" 2 (Obs.Histogram.count h);
  Alcotest.(check bool) "underflow clamps to lowest edge" true
    (Obs.Histogram.quantile h 0.0 <= 1e-6 +. 1e-18);
  Alcotest.(check bool) "overflow clamps to highest edge" true
    (Obs.Histogram.quantile h 1.0 >= 1e3 -. 1e-9);
  Alcotest.(check int) "underflow below every edge" 1
    (Obs.Histogram.cumulative h ~le:1e-6);
  Alcotest.(check int) "infinity sees all" 2
    (Obs.Histogram.cumulative h ~le:infinity)

let test_histogram_cumulative () =
  let h = Obs.Histogram.create () in
  (* values strictly inside buckets, one per decade region *)
  List.iter (Obs.Histogram.record h) [ 0.0005; 0.0011; 0.5; 2.0 ];
  Alcotest.(check int) "le 1e-3" 1 (Obs.Histogram.cumulative h ~le:1e-3);
  Alcotest.(check int) "le 1e-2" 2 (Obs.Histogram.cumulative h ~le:1e-2);
  Alcotest.(check int) "le 1" 3 (Obs.Histogram.cumulative h ~le:1.0);
  Alcotest.(check int) "le 1e3" 4 (Obs.Histogram.cumulative h ~le:1e3);
  (* the Prometheus ladder is monotone and ends at the exact count *)
  let last = ref 0 in
  Array.iter
    (fun le ->
      let c = Obs.Histogram.cumulative h ~le in
      Alcotest.(check bool) "monotone" true (c >= !last);
      last := c)
    Obs.Histogram.le_edges;
  Alcotest.(check int) "ladder tops out at count" 4 !last

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record a) [ 0.001; 0.01 ];
  List.iter (Obs.Histogram.record b) [ 0.1; 1.0; 10.0 ];
  Obs.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (Obs.Histogram.count a);
  Alcotest.(check (float 1e-12)) "merged sum" 11.111 (Obs.Histogram.sum a);
  Alcotest.(check int) "merged cumulative" 3
    (Obs.Histogram.cumulative a ~le:0.5);
  Alcotest.(check int) "b untouched" 3 (Obs.Histogram.count b)

(* The documented bound: for samples inside the bucketed range, the
   histogram quantile is the geometric midpoint of the bucket holding
   the exact sample quantile's rank, hence within a factor
   sqrt(10^(1/25)) ~ 1.047 < 1.1 of Runner.percentile (both use the
   floor(q*(n-1)) rank convention). *)
let prop_histogram_quantile_error =
  QCheck.Test.make
    ~name:"histogram quantile within 10% of the exact percentile" ~count:200
    QCheck.(pair (int_range 0 10_000) (int_range 1 150))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      (* spread samples across the decades 1e-5 .. 1e2 *)
      let values =
        Array.init n (fun _ ->
            let e = -5 + Random.State.int rng 8 in
            let m = 1.0 +. Random.State.float rng 8.99 in
            m *. (10.0 ** float_of_int e))
      in
      let h = Obs.Histogram.create () in
      Array.iter (Obs.Histogram.record h) values;
      let sorted = Array.copy values in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let exact = Workload.Runner.percentile sorted q in
          let est = Obs.Histogram.quantile h q in
          est <= exact *. 1.1 && est >= exact /. 1.1)
        [ 0.0; 0.25; 0.5; 0.9; 0.95; 1.0 ])

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "obs"
    [
      ( "differential",
        [
          Alcotest.test_case "traced = untraced, all methods" `Quick
            test_traced_equals_untraced;
          Alcotest.test_case "no counter drift" `Quick
            test_sink_never_drifts_counters;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome export + phase coverage" `Quick
            test_trace_export;
          Alcotest.test_case "null sink is a no-op" `Quick
            test_null_sink_is_noop;
          Alcotest.test_case "fake clock spans + self time" `Quick
            test_sink_fake_clock;
          Alcotest.test_case "bounded event buffer" `Quick
            test_sink_bounded_buffer;
          Alcotest.test_case "phase indexing" `Quick test_phase_indexing;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "percentile edge cases" `Quick
            test_percentile_edges;
          Alcotest.test_case "histogram exact moments" `Quick
            test_histogram_exact_moments;
          Alcotest.test_case "histogram out of range" `Quick
            test_histogram_out_of_range;
          Alcotest.test_case "histogram cumulative" `Quick
            test_histogram_cumulative;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        ] );
      qsuite "quantile-bounds" [ prop_histogram_quantile_error ];
    ]
