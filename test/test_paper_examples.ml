(* End-to-end reconstructions of the paper's worked examples (Sections
   II, IV and V): the G1 graph with the 3-star query q1, the TSR and ECI
   structures of Figs. 3, 4 and 6, and multi-TSRJoin plans in the style
   of Fig. 5 (chain and circle queries processed by several joins). *)

open Semantics
open Tcsq_core

let interval = Alcotest.testable Temporal.Interval.pp Temporal.Interval.equal

(* G1: v0 has out-edges labeled a (e1..e5), b (e6..e10), c (e11, e12),
   with the intervals of the running example. Destinations are distinct
   fresh vertices (the example only constrains v0's out-edges). *)
let g1 () =
  let b = Tgraph.Graph.Builder.create () in
  let add lbl dst ts te =
    ignore (Tgraph.Graph.Builder.add_edge_named b ~src:0 ~dst ~lbl ~ts ~te)
  in
  (* ids 0..4 = the paper's e1..e5, etc. *)
  add "a" 1 0 5;
  add "a" 2 6 9;
  add "a" 3 11 12;
  add "a" 4 13 15;
  add "a" 5 18 19;
  add "b" 6 2 4;
  add "b" 7 7 10;
  add "b" 8 13 15;
  add "b" 9 17 18;
  add "b" 10 19 20;
  add "c" 11 3 6;
  add "c" 12 15 16;
  Tgraph.Graph.Builder.finish b

let label g name = Option.get (Tgraph.Label.find (Tgraph.Graph.labels g) name)

(* q1: the 3-star a(x0,x1), b(x0,x2), c(x0,x3) with window [10, 20]. *)
let q1 g =
  Query.make ~n_vars:4
    ~edges:[ (label g "a", 0, 1); (label g "b", 0, 2); (label g "c", 0, 3) ]
    ~window:(Temporal.Interval.make 10 20)

let test_q1_complete_result () =
  let g = g1 () in
  let tai = Tai.build g in
  (* Section II: the unique complete match is (e4, e8, e12, [15, 15]) —
     our 0-based edge ids 3, 7, 11. *)
  (match Tsrjoin.evaluate tai (q1 g) with
  | [ m ] ->
      Alcotest.(check (list int)) "edge bindings" [ 3; 7; 11 ]
        (Array.to_list m.Match_result.edges);
      Alcotest.check interval "lifespan" (Temporal.Interval.make 15 15)
        m.Match_result.life
  | ms -> Alcotest.failf "expected 1 match, got %d" (List.length ms));
  (* and every engine agrees *)
  let engine = Workload.Engine.prepare g in
  Array.iter
    (fun method_ ->
      Alcotest.(check int)
        (Workload.Engine.method_name method_)
        1
        (Workload.Engine.count engine method_ (q1 g)))
    Workload.Engine.all_methods

let test_fig3_tsrs () =
  let g = g1 () in
  let tai = Tai.build g in
  (* Fig. 3: R1(a,v0,ANY) = {e1..e5}, R2(b,v0,ANY) = {e6..e10},
     R3(c,v0,ANY) = {e11, e12} *)
  let ids tsr = List.map Tgraph.Edge.id (Tsr.to_list tsr) in
  Alcotest.(check (list int)) "R1" [ 0; 1; 2; 3; 4 ]
    (ids (Tai.tsr_out tai ~lbl:(label g "a") ~src:0));
  Alcotest.(check (list int)) "R2" [ 5; 6; 7; 8; 9 ]
    (ids (Tai.tsr_out tai ~lbl:(label g "b") ~src:0));
  Alcotest.(check (list int)) "R3" [ 10; 11 ]
    (ids (Tai.tsr_out tai ~lbl:(label g "c") ~src:0))

let test_fig6_eci () =
  let g = g1 () in
  let tai = Tai.build ~with_eci:true g in
  (* Fig. 6 flavour: getCoverageTuple(R(a,v0,ANY), 1) = (0, 5, 0) — e1
     spans [0,5] and is the earliest concurrent throughout. *)
  let tsr = Tai.tsr_out tai ~lbl:(label g "a") ~src:0 in
  (match Tsr.get_coverage_tuple tsr 1 with
  | Some { Temporal.Coverage.cs; ce; ec } ->
      Alcotest.(check (list int)) "(cs, ce, ec)" [ 0; 5; 0 ] [ cs; ce; ec ]
  | None -> Alcotest.fail "no coverage tuple at t = 1");
  (* and the gap handling: nothing of label c covers t = 10; the lookup
     falls forward to e12's segment *)
  let tsr_c = Tai.tsr_out tai ~lbl:(label g "c") ~src:0 in
  match Tsr.get_coverage_tuple tsr_c 10 with
  | Some { Temporal.Coverage.cs; ec; _ } ->
      Alcotest.(check int) "falls forward to e12" 15 cs;
      Alcotest.(check int) "ec" 15 ec
  | None -> Alcotest.fail "expected the e12 tuple"

(* A G2-style graph for multi-join plans: a 4-chain and a 4-circle with
   known answers, verified against the oracle and checked to execute as
   more than one TSRJoin (Fig. 5 (b) and (c)). *)
let g2 () =
  Tgraph.Graph.of_edge_list
    [
      (* chain v0 -a-> v1 -b-> v2 -c-> v3 -d-> v0 (also closing a circle) *)
      (0, 1, 0, 10, 20);
      (1, 2, 1, 12, 18);
      (2, 3, 2, 13, 22);
      (3, 0, 3, 15, 16);
      (* decoys: right labels, wrong time or wrong place *)
      (0, 1, 0, 40, 45);
      (1, 2, 1, 41, 44);
      (2, 3, 2, 1, 2);
      (3, 0, 3, 46, 47);
      (1, 3, 2, 14, 21);
    ]

let test_fig5_chain_plan () =
  let g = g2 () in
  let tai = Tai.build g in
  let q =
    Pattern.instantiate (Pattern.Chain 4) ~labels:[| 0; 1; 2; 3 |]
      ~window:(Temporal.Interval.make 10 25)
  in
  let plan = Plan.build tai q in
  Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate plan));
  Alcotest.(check bool) "composed of several TSRJoins" true
    (Array.length (Plan.steps plan) >= 2);
  let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
  let actual = Match_result.Result_set.of_list (Tsrjoin.evaluate ~plan tai q) in
  Alcotest.(check bool) "chain results" true
    (Match_result.Result_set.equal expected actual);
  Alcotest.(check bool) "window [10,25] has matches" true
    (Match_result.Result_set.cardinality expected > 0)

let test_fig5_circle_plan () =
  let g = g2 () in
  let tai = Tai.build g in
  let q =
    Pattern.instantiate (Pattern.Cycle 4) ~labels:[| 0; 1; 2; 3 |]
      ~window:(Temporal.Interval.make 10 25)
  in
  let plan = Plan.build tai q in
  Alcotest.(check bool) "several TSRJoins" true (Array.length (Plan.steps plan) >= 2);
  match Tsrjoin.evaluate ~plan tai q with
  | [ m ] ->
      (* the only circle: e0 e1 e2 e3 jointly alive on [15, 16] *)
      Alcotest.(check (list int)) "edges" [ 0; 1; 2; 3 ]
        (List.sort compare (Array.to_list m.Match_result.edges));
      Alcotest.check interval "lifespan" (Temporal.Interval.make 15 16)
        m.Match_result.life
  | ms -> Alcotest.failf "expected the unique circle, got %d" (List.length ms)

let test_partial_match_windows () =
  (* Section II's partial-match example: lifespans of sub-matches of q1
     must overlap the window; (e4, e8) has lifespan [13, 15]. *)
  let g = g1 () in
  let tai = Tai.build g in
  let q =
    Query.make ~n_vars:3
      ~edges:[ (label g "a", 0, 1); (label g "b", 0, 2) ]
      ~window:(Temporal.Interval.make 10 20)
  in
  let ms = Tsrjoin.evaluate tai q in
  (* pairs jointly overlapping within [10,20]: (e4,e8) [13,15],
     (e4,e9)? [13,15]x[17,18] = empty; (e5,e9) [18,18]; (e5,e10) [19,19];
     (e3,e7)? [11,12]x[7,10] empty. *)
  let key m = (m.Match_result.edges.(0), m.Match_result.edges.(1)) in
  let got = List.sort compare (List.map key ms) in
  Alcotest.(check (list (pair int int)))
    "overlapping pairs"
    [ (3, 7); (4, 8); (4, 9) ]
    got

let () =
  Alcotest.run "paper_examples"
    [
      ( "g1-q1",
        [
          Alcotest.test_case "complete result (all engines)" `Quick
            test_q1_complete_result;
          Alcotest.test_case "Fig 3 TSRs" `Quick test_fig3_tsrs;
          Alcotest.test_case "Fig 6 ECI lookups" `Quick test_fig6_eci;
          Alcotest.test_case "partial matches (2-star)" `Quick
            test_partial_match_windows;
        ] );
      ( "fig5-plans",
        [
          Alcotest.test_case "4-chain over two joins" `Quick test_fig5_chain_plan;
          Alcotest.test_case "4-circle over three joins" `Quick test_fig5_circle_plan;
        ] );
    ]
