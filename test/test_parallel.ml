(* Tests for the work-stealing multi-domain TSRJoin driver
   (Exec.Parallel): exact-order and multiset equivalence with the
   sequential engine and the naive oracle across domain counts and
   chunk sizes, merged Run_stats/obs counter equality, global budget
   and deadline fault injection (one failing domain stops the rest,
   and the shared pool stays usable), and pool-level exception
   accounting. *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b

let same_list msg expected actual =
  Alcotest.(check int) (msg ^ ": length") (List.length expected)
    (List.length actual);
  List.iteri
    (fun i (e, a) ->
      if not (Match_result.equal e a) then
        Alcotest.failf "%s: order diverges at match %d" msg i)
    (List.combine expected actual)

(* One engine-shaped graph reused by most tests: big enough that every
   query has many root bindings to steal. *)
let graph () =
  Test_util.random_graph ~seed:81 ~n_vertices:8 ~n_edges:150 ~n_labels:3
    ~domain:50 ~max_len:12 ()

let test_parallel_equals_sequential () =
  let g = graph () in
  let tai = Tai.build g in
  let cost = Plan.cost_model tai in
  List.iteri
    (fun qi q ->
      let expected = Tsrjoin.evaluate ~cost tai q in
      let oracle = Match_result.Result_set.of_list (Naive.evaluate g q) in
      (match
         Match_result.Result_set.diff_summary ~expected:oracle
           ~actual:(Match_result.Result_set.of_list expected)
       with
      | None -> ()
      | Some diff -> Alcotest.failf "query %d vs oracle: %s" qi diff);
      List.iter
        (fun domains ->
          List.iter
            (fun chunk ->
              (* evaluate promises the exact sequential order, not just
                 the multiset *)
              let actual =
                Exec.Parallel.evaluate ~domains ~chunk ~cost tai q
              in
              same_list
                (Printf.sprintf "query %d, %d domains, chunk %d" qi domains
                   chunk)
                expected actual)
            [ 1; 2; 7 ])
        [ 1; 2; 3; 8 ])
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 40))

let test_streaming_run_and_count () =
  let g = graph () in
  let tai = Tai.build g in
  List.iter
    (fun q ->
      let expected = Tsrjoin.evaluate tai q in
      let acc = ref [] in
      Exec.Parallel.run ~domains:4 ~chunk:2 tai q ~emit:(fun m ->
          acc := m :: !acc);
      Test_util.check_same_results ~msg:"streaming run multiset" expected !acc;
      Alcotest.(check int) "count" (List.length expected)
        (Exec.Parallel.count ~domains:4 tai q))
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 40))

let test_parallel_durable () =
  let g =
    Test_util.random_graph ~seed:82 ~n_vertices:6 ~n_edges:100 ~n_labels:2
      ~domain:40 ~max_len:12 ()
  in
  let tai = Tai.build g in
  let q =
    Query.with_min_duration
      (Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 39))
      4
  in
  Test_util.check_same_results ~msg:"durable parallel"
    (Tsrjoin.evaluate tai q)
    (Exec.Parallel.evaluate ~domains:3 tai q)

let test_parallel_validation () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 9) in
  Alcotest.check_raises "zero domains" (Invalid_argument "") (fun () ->
      try ignore (Exec.Parallel.evaluate ~domains:0 tai q)
      with Invalid_argument _ -> raise (Invalid_argument ""));
  (* more domains than root candidates is fine *)
  Alcotest.(check int) "tiny graph, many domains" 1
    (List.length (Exec.Parallel.evaluate ~domains:8 tai q))

(* Merged per-domain stats must equal a sequential run on every
   deterministic counter: same root bindings processed exactly once,
   root-leapfrog seeks charged by the coordinator. The per-level
   intermediate counters must merge bit-equal too (element-wise sums of
   disjoint root partitions), at every domain count. *)
let test_merged_stats_equal_sequential () =
  let g = graph () in
  let tai = Tai.build g in
  List.iteri
    (fun qi q ->
      let seq = Run_stats.create () in
      ignore (Tsrjoin.evaluate ~stats:seq tai q);
      List.iter
        (fun domains ->
          let par = Run_stats.create () in
          ignore
            (Exec.Parallel.evaluate ~domains ~chunk:3 ~stats:par tai q);
          let check name f =
            Alcotest.(check int)
              (Printf.sprintf "query %d (%d domains): %s" qi domains name)
              (f seq) (f par)
          in
          check "results" (fun s -> s.Run_stats.results);
          check "intermediate" (fun s -> s.Run_stats.intermediate);
          check "scanned" (fun s -> s.Run_stats.scanned);
          check "bindings" (fun s -> s.Run_stats.bindings);
          check "enum_steps" (fun s -> s.Run_stats.enum_steps);
          check "seeks" (fun s -> s.Run_stats.seeks);
          Alcotest.(check (array int))
            (Printf.sprintf "query %d (%d domains): level counters" qi
               domains)
            (Run_stats.levels seq) (Run_stats.levels par);
          Alcotest.(check int)
            (Printf.sprintf "query %d (%d domains): levels sum" qi domains)
            par.Run_stats.intermediate
            (Array.fold_left ( + ) 0 (Run_stats.levels par)))
        [ 2; 3; 4 ])
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 40))

(* Merged child sinks must carry the same deterministic phase counts as
   one sequential sink. *)
let test_merged_obs_equal_sequential () =
  let g = graph () in
  let tai = Tai.build g in
  let q =
    List.hd (List.rev (Test_util.query_pool ~n_labels:3 ~window:(window 8 40)))
  in
  let seq_obs = Obs.Sink.create ~clock:Unix.gettimeofday () in
  ignore (Tsrjoin.evaluate ~obs:seq_obs tai q);
  let par_obs = Obs.Sink.create ~clock:Unix.gettimeofday () in
  ignore (Exec.Parallel.evaluate ~domains:3 ~obs:par_obs tai q);
  List.iter
    (fun phase ->
      Alcotest.(check int)
        (Printf.sprintf "obs count %s" (Obs.Phase.name phase))
        (Obs.Sink.count seq_obs phase)
        (Obs.Sink.count par_obs phase))
    [
      Obs.Phase.Leapfrog_seek; Obs.Phase.Leapfrog_next;
      Obs.Phase.Leapfrog_open; Obs.Phase.Tai_probe;
    ]

(* ---- fault injection -------------------------------------------- *)

(* A result budget hit in one domain must stop the whole fan-out with
   Limit_exceeded after exactly max_results emissions (the sequential
   cut), and the shared pool must survive for the next query. *)
let test_limit_stops_all_domains () =
  let g = graph () in
  let tai = Tai.build g in
  let q =
    (* the 2-star has the most matches in the pool *)
    List.hd (Test_util.query_pool ~n_labels:3 ~window:(window 8 40))
  in
  let total = Tsrjoin.count tai q in
  Alcotest.(check bool) "enough matches to truncate" true (total > 7);
  let stats = Run_stats.create ~limits:(Run_stats.with_max_results 7) () in
  let emitted = Atomic.make 0 in
  (match
     Exec.Parallel.run ~domains:4 ~chunk:1 ~stats tai q ~emit:(fun _ ->
         Atomic.incr emitted)
   with
  | () -> Alcotest.fail "expected Limit_exceeded"
  | exception Run_stats.Limit_exceeded _ -> ());
  Alcotest.(check int) "exactly max_results emitted" 7 (Atomic.get emitted);
  Alcotest.(check bool) "merged stats saw the truncated work" true
    (stats.Run_stats.results >= 7);
  (* the pool is reusable after a faulted run *)
  Test_util.check_same_results ~msg:"pool healthy after limit fault"
    (Tsrjoin.evaluate tai q)
    (Exec.Parallel.evaluate ~domains:4 tai q)

(* An expired deadline (fake clock that counts its reads) must abort
   every domain with Deadline_exceeded on the first check, whichever
   domain reaches it first. *)
let test_deadline_stops_all_domains () =
  let g = graph () in
  let tai = Tai.build g in
  let q =
    List.hd (List.tl (Test_util.query_pool ~n_labels:3 ~window:(window 8 40)))
  in
  let reads = Atomic.make 0 in
  let deadline =
    {
      Run_stats.expires_at = -1.;
      now = (fun () -> float_of_int (Atomic.fetch_and_add reads 1));
    }
  in
  let stats = Run_stats.create ~deadline () in
  (match Exec.Parallel.run ~domains:4 ~chunk:1 ~stats tai q ~emit:(fun _ -> ())
   with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Run_stats.Deadline_exceeded -> ());
  Alcotest.(check bool) "clock was actually consulted" true
    (Atomic.get reads >= 1);
  Test_util.check_same_results ~msg:"pool healthy after deadline fault"
    (Tsrjoin.evaluate tai q)
    (Exec.Parallel.evaluate ~domains:4 tai q)

(* ---- engine wiring ---------------------------------------------- *)

let test_engine_domains () =
  let g = graph () in
  let engine = Workload.Engine.prepare g in
  List.iter
    (fun q ->
      let expected = Workload.Engine.evaluate engine Workload.Engine.Tsrjoin q in
      same_list "engine evaluate order" expected
        (Workload.Engine.evaluate ~domains:3 engine Workload.Engine.Tsrjoin q);
      Alcotest.(check int) "engine count" (List.length expected)
        (Workload.Engine.count ~domains:3 engine Workload.Engine.Tsrjoin q))
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 40))

(* ---- pool ------------------------------------------------------- *)

let rec wait_until ?(tries = 200) pred =
  if pred () then true
  else if tries = 0 then false
  else begin
    Unix.sleepf 0.01;
    wait_until ~tries:(tries - 1) pred
  end

let test_pool_counts_dropped_exceptions () =
  let pool = Exec.Pool.create ~workers:1 ~max_depth:4 in
  Alcotest.(check int) "no drops initially" 0
    (Exec.Pool.dropped_exceptions pool);
  Alcotest.(check bool) "failing job admitted" true
    (Exec.Pool.submit pool (fun () -> failwith "boom"));
  Alcotest.(check bool) "drop counted" true
    (wait_until (fun () -> Exec.Pool.dropped_exceptions pool = 1));
  (* the worker survived the exception and still runs jobs *)
  let ran = Atomic.make false in
  Alcotest.(check bool) "next job admitted" true
    (Exec.Pool.submit pool (fun () -> Atomic.set ran true));
  Alcotest.(check bool) "worker alive after drop" true
    (wait_until (fun () -> Atomic.get ran));
  Exec.Pool.shutdown pool

let test_pool_submit_if_idle_capacity () =
  let pool = Exec.Pool.create ~workers:2 ~max_depth:8 in
  Alcotest.(check int) "both idle" 2 (Exec.Pool.idle_workers pool);
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let blocker () =
    Atomic.incr started;
    while not (Atomic.get release) do
      Unix.sleepf 0.002
    done
  in
  Alcotest.(check bool) "blocker admitted" true (Exec.Pool.submit pool blocker);
  Alcotest.(check bool) "blocker running" true
    (wait_until (fun () -> Atomic.get started = 1));
  (* one worker busy: only one helper fits, the second is refused *)
  Alcotest.(check int) "idle-bounded admission" 1
    (Exec.Pool.submit_if_idle pool [ blocker; blocker ]);
  Alcotest.(check bool) "helper running" true
    (wait_until (fun () -> Atomic.get started = 2));
  Alcotest.(check int) "no idle workers left" 0 (Exec.Pool.idle_workers pool);
  Alcotest.(check int) "saturated pool refuses helpers" 0
    (Exec.Pool.submit_if_idle pool [ blocker ]);
  Atomic.set release true;
  Exec.Pool.shutdown pool

(* ---- properties -------------------------------------------------- *)

let prop_parallel_equivalence =
  QCheck.Test.make
    ~name:"parallel = sequential = oracle on random graphs" ~count:20
    QCheck.(
      triple (int_range 0 10_000) (int_range 1 5) (int_range 1 9))
    (fun (seed, domains, chunk) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:50 ~n_labels:3
          ~domain:30 ~max_len:8 ()
      in
      let tai = Tai.build g in
      List.for_all
        (fun q ->
          let seq = Tsrjoin.evaluate tai q in
          let par = Exec.Parallel.evaluate ~domains ~chunk tai q in
          List.length seq = List.length par
          && List.for_all2 Match_result.equal seq par
          && Match_result.Result_set.equal
               (Match_result.Result_set.of_list (Naive.evaluate g q))
               (Match_result.Result_set.of_list par))
        (Test_util.query_pool ~n_labels:3 ~window:(window 5 22)))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "ordered evaluate matches sequential" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "streaming run and count" `Quick
            test_streaming_run_and_count;
          Alcotest.test_case "durable queries" `Quick test_parallel_durable;
          Alcotest.test_case "validation and tiny inputs" `Quick
            test_parallel_validation;
          Alcotest.test_case "engine ?domains wiring" `Quick
            test_engine_domains;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "merged stats = sequential" `Quick
            test_merged_stats_equal_sequential;
          Alcotest.test_case "merged obs counts = sequential" `Quick
            test_merged_obs_equal_sequential;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "limit stops all domains" `Quick
            test_limit_stops_all_domains;
          Alcotest.test_case "deadline stops all domains" `Quick
            test_deadline_stops_all_domains;
        ] );
      ( "pool",
        [
          Alcotest.test_case "dropped exceptions counted" `Quick
            test_pool_counts_dropped_exceptions;
          Alcotest.test_case "submit_if_idle capacity" `Quick
            test_pool_submit_if_idle_capacity;
        ] );
      qsuite "properties" [ prop_parallel_equivalence ];
    ]
