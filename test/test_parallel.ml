(* Tests for multi-domain TSRJoin evaluation: result equivalence with
   the sequential engine across domain counts, patterns and duration
   floors. *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b

let test_parallel_equals_sequential () =
  let g =
    Test_util.random_graph ~seed:81 ~n_vertices:8 ~n_edges:150 ~n_labels:3
      ~domain:50 ~max_len:12 ()
  in
  let tai = Tai.build g in
  let cost = Plan.cost_model tai in
  List.iteri
    (fun qi q ->
      let expected = Match_result.Result_set.of_list (Tsrjoin.evaluate ~cost tai q) in
      List.iter
        (fun domains ->
          let actual =
            Match_result.Result_set.of_list
              (Tsrjoin.run_parallel ~domains ~cost tai q)
          in
          match Match_result.Result_set.diff_summary ~expected ~actual with
          | None -> ()
          | Some diff ->
              Alcotest.failf "query %d, %d domains: %s" qi domains diff)
        [ 1; 2; 3; 4 ])
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 40))

let test_parallel_durable () =
  let g =
    Test_util.random_graph ~seed:82 ~n_vertices:6 ~n_edges:100 ~n_labels:2
      ~domain:40 ~max_len:12 ()
  in
  let tai = Tai.build g in
  let q =
    Query.with_min_duration
      (Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 39))
      4
  in
  Test_util.check_same_results ~msg:"durable parallel"
    (Tsrjoin.evaluate tai q)
    (Tsrjoin.run_parallel ~domains:3 tai q)

let test_parallel_validation () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 9) in
  Alcotest.check_raises "zero domains" (Invalid_argument "") (fun () ->
      try ignore (Tsrjoin.run_parallel ~domains:0 tai q)
      with Invalid_argument _ -> raise (Invalid_argument ""));
  (* more domains than candidates is fine *)
  Alcotest.(check int) "tiny graph, many domains" 1
    (List.length (Tsrjoin.run_parallel ~domains:8 tai q))

let prop_parallel_equivalence =
  QCheck.Test.make ~name:"parallel = sequential on random graphs" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 1 5))
    (fun (seed, domains) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:50 ~n_labels:3
          ~domain:30 ~max_len:8 ()
      in
      let tai = Tai.build g in
      List.for_all
        (fun q ->
          Match_result.Result_set.equal
            (Match_result.Result_set.of_list (Tsrjoin.evaluate tai q))
            (Match_result.Result_set.of_list
               (Tsrjoin.run_parallel ~domains tai q)))
        (Test_util.query_pool ~n_labels:3 ~window:(window 5 22)))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_equals_sequential;
          Alcotest.test_case "durable queries" `Quick test_parallel_durable;
          Alcotest.test_case "validation and tiny inputs" `Quick test_parallel_validation;
        ] );
      qsuite "properties" [ prop_parallel_equivalence ];
    ]
