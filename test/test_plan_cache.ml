(* The plan cache's own contract: LRU bound, capacity-0 passthrough,
   generation invalidation, window-length bucketing of the key,
   poisoning/replan flow, counter exactness under concurrent domains,
   and the headline safety property — a cached plan never changes the
   result set (QCheck differential against a cache-free engine). *)

open Semantics
module Plan_cache = Workload.Plan_cache

let window = Temporal.Interval.make 0 63

let graph () =
  Test_util.random_graph ~seed:97 ~n_vertices:8 ~n_edges:120 ~n_labels:4
    ~domain:48 ~max_len:12 ()

let engine = lazy (Workload.Engine.prepare (graph ()))

(* distinct single-edge shapes: label l keys apart from label l' *)
let q_label l =
  Query.make ~n_vars:2 ~edges:[ (l, 0, 1) ] ~window

let plan_for q =
  Tcsq_core.Plan.build (Workload.Engine.tai (Lazy.force engine)) q

let store_q cache q =
  Plan_cache.store cache q ~plan:(plan_for q) ~est_intermediate:10
    ~est_levels:[| 10 |]

let is_hit = function Plan_cache.Hit _ -> true | _ -> false
let is_miss = function Plan_cache.Miss -> true | _ -> false
let is_replan = function Plan_cache.Replan _ -> true | _ -> false

(* ---- LRU eviction order ---- *)

let test_lru_eviction () =
  let cache = Plan_cache.create ~capacity:2 () in
  let a = q_label 0 and b = q_label 1 and c = q_label 2 in
  store_q cache a;
  store_q cache b;
  (* touching [a] makes [b] the least recently used *)
  Alcotest.(check bool) "a hits" true (is_hit (Plan_cache.lookup cache a));
  store_q cache c;
  Alcotest.(check int) "bounded" 2 (Plan_cache.length cache);
  Alcotest.(check bool) "b was evicted" true
    (is_miss (Plan_cache.lookup cache b));
  Alcotest.(check bool) "a survived" true
    (is_hit (Plan_cache.lookup cache a));
  Alcotest.(check bool) "c survived" true
    (is_hit (Plan_cache.lookup cache c));
  let cs = Plan_cache.counters cache in
  Alcotest.(check int) "one eviction" 1 cs.Plan_cache.evictions;
  Alcotest.(check int) "hits counted" 3 cs.Plan_cache.hits;
  Alcotest.(check int) "misses counted" 1 cs.Plan_cache.misses

(* ---- capacity 0 is a passthrough ---- *)

let test_capacity_zero () =
  let cache = Plan_cache.create ~capacity:0 () in
  let q = q_label 0 in
  store_q cache q;
  Alcotest.(check int) "nothing stored" 0 (Plan_cache.length cache);
  Alcotest.(check bool) "always a miss" true
    (is_miss (Plan_cache.lookup cache q));
  let cs = Plan_cache.counters cache in
  Alcotest.(check int) "miss counted" 1 cs.Plan_cache.misses;
  Alcotest.(check int) "no hit" 0 cs.Plan_cache.hits

(* ---- generation invalidation drops everything ---- *)

let test_generation_invalidation () =
  let cache = Plan_cache.create () in
  store_q cache (q_label 0);
  store_q cache (q_label 1);
  let g0 = Plan_cache.generation cache in
  Plan_cache.bump_generation cache;
  Alcotest.(check int) "generation bumped" (g0 + 1)
    (Plan_cache.generation cache);
  Alcotest.(check int) "empty" 0 (Plan_cache.length cache);
  Alcotest.(check int) "invalidation counter" 2
    (Plan_cache.counters cache).Plan_cache.invalidations;
  Alcotest.(check bool) "entries gone" true
    (is_miss (Plan_cache.lookup cache (q_label 0)))

(* ---- window-length bucketing of the key ---- *)

let q_window_len len =
  Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ]
    ~window:(Temporal.Interval.make 0 (len - 1))

let test_window_buckets () =
  (* 2^k and 2^k + 1 always land in different buckets... *)
  List.iter
    (fun k ->
      let len = 1 lsl k in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d <> bucket %d" len (len + 1))
        true
        (Plan_cache.window_bucket len <> Plan_cache.window_bucket (len + 1)))
    [ 1; 2; 3; 4; 5; 10 ];
  (* ...so the cached entry for a 2^k-length window never serves the
     2^k + 1 query, while same-bucket lengths share it *)
  let cache = Plan_cache.create () in
  store_q cache (q_window_len 8);
  Alcotest.(check bool) "len 9 keys apart" true
    (is_miss (Plan_cache.lookup cache (q_window_len 9)));
  Alcotest.(check bool) "len 7 shares the 5..8 bucket" true
    (is_hit (Plan_cache.lookup cache (q_window_len 7)));
  Alcotest.(check string) "canonical plan forms differ"
    (Fingerprint.canonical_plan (q_window_len 8))
    (Fingerprint.canonical_plan (q_window_len 7));
  Alcotest.(check bool) "canonical plan form splits at 9" true
    (Fingerprint.canonical_plan (q_window_len 8)
    <> Fingerprint.canonical_plan (q_window_len 9))

(* ---- poisoning / replan flow ---- *)

let test_replan_flow () =
  let cache = Plan_cache.create ~replan_threshold:16.0 ~replan_after:2 () in
  let q = q_label 0 in
  store_q cache q;
  (* est 10 vs measured 1000: x100 misestimation, twice in a row *)
  Plan_cache.feedback cache q ~levels:[| 1000 |];
  Alcotest.(check bool) "one strike keeps serving" true
    (is_hit (Plan_cache.lookup cache q));
  Plan_cache.feedback cache q ~levels:[| 1000 |];
  let v = Plan_cache.lookup cache q in
  Alcotest.(check bool) "second strike poisons" true (is_replan v);
  (match v with
  | Plan_cache.Replan { edge_scale } ->
      (* the calibration factors carry the observed blow-up upward *)
      Array.iter
        (fun e -> Alcotest.(check bool) "scale > 1" true (edge_scale e > 1.0))
        (Query.edges q)
  | _ -> ());
  Alcotest.(check int) "replan counted" 1
    (Plan_cache.counters cache).Plan_cache.replans;
  (* re-storing clears the poison and an accurate run keeps it clear *)
  store_q cache q;
  Plan_cache.feedback cache q ~levels:[| 10 |];
  Plan_cache.feedback cache q ~levels:[| 1000 |];
  Alcotest.(check bool) "poison cleared by store + accurate run" true
    (is_hit (Plan_cache.lookup cache q))

(* ---- concurrent counter exactness ---- *)

let test_concurrent_counters () =
  let cache = Plan_cache.create () in
  let hot = q_label 0 in
  store_q cache hot;
  let per_domain = 500 in
  let worker lbl () =
    let cold = q_label lbl in
    for _ = 1 to per_domain do
      ignore (Plan_cache.lookup cache hot);
      (* never stored: a guaranteed miss, from every domain *)
      ignore (Plan_cache.lookup cache cold)
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (10 + i))) in
  List.iter Domain.join domains;
  let cs = Plan_cache.counters cache in
  Alcotest.(check int) "hits exact" (4 * per_domain) cs.Plan_cache.hits;
  Alcotest.(check int) "misses exact" (4 * per_domain) cs.Plan_cache.misses;
  Alcotest.(check int) "no spurious replans" 0 cs.Plan_cache.replans

(* ---- cached-vs-fresh differential (the safety property) ---- *)

let prop_cached_equals_fresh =
  let g = graph () in
  let e = Workload.Engine.prepare g in
  let cache = Plan_cache.create () in
  QCheck.Test.make ~name:"cached plan never changes the result set"
    ~count:100
    (QCheck.make
       ~print:(fun seed ->
         Format.asprintf "%a" Query.pp
           (Testkit.random_query ~seed ~n_labels:4 ~max_edges:3 ~window))
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let q = Testkit.random_query ~seed ~n_labels:4 ~max_edges:3 ~window in
      let fresh = Workload.Engine.evaluate e Workload.Engine.Tsrjoin q in
      (* twice through the shared cache: miss-then-store, then hit *)
      let c1 =
        Workload.Engine.evaluate ~plan_cache:cache e Workload.Engine.Tsrjoin q
      in
      let c2 =
        Workload.Engine.evaluate ~plan_cache:cache e Workload.Engine.Tsrjoin q
      in
      (* set equality: a plan transferred from an equivalence-class
         sibling may enumerate the same matches in a different order *)
      let sort = List.sort Match_result.compare in
      let eq a b =
        List.length a = List.length b
        && List.for_all2 Match_result.equal (sort a) (sort b)
      in
      eq fresh c1 && eq fresh c2)

(* after an append-style graph change the caller bumps the generation:
   stale plans must all drop, and the refreshed engine agrees with a
   cache-free one on the new graph *)
let test_invalidation_after_ingest () =
  let g = graph () in
  let e = Workload.Engine.prepare g in
  let cache = Plan_cache.create () in
  let qs = List.init 4 (fun l -> q_label l) in
  List.iter
    (fun q ->
      ignore
        (Workload.Engine.evaluate ~plan_cache:cache e Workload.Engine.Tsrjoin
           q))
    qs;
  Alcotest.(check int) "entries cached" 4 (Plan_cache.length cache);
  let g' =
    Tgraph.Graph.append g
      [ (0, 1, 0, 40, 45); (2, 3, 1, 41, 46); (4, 5, 2, 42, 47) ]
  in
  let e' = Workload.Engine.prepare g' in
  Plan_cache.bump_generation cache;
  Alcotest.(check int) "all entries dropped" 0 (Plan_cache.length cache);
  let before = (Plan_cache.counters cache).Plan_cache.misses in
  List.iter
    (fun q ->
      let fresh = Workload.Engine.evaluate e' Workload.Engine.Tsrjoin q in
      let cached =
        Workload.Engine.evaluate ~plan_cache:cache e' Workload.Engine.Tsrjoin
          q
      in
      let sort = List.sort Match_result.compare in
      Alcotest.(check bool) "post-ingest results agree" true
        (List.length fresh = List.length cached
        && List.for_all2 Match_result.equal (sort fresh) (sort cached)))
    qs;
  Alcotest.(check int) "every post-ingest first run re-planned"
    (before + 4)
    (Plan_cache.counters cache).Plan_cache.misses

let () =
  Alcotest.run "plan_cache"
    [
      ( "unit",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "capacity 0 passthrough" `Quick
            test_capacity_zero;
          Alcotest.test_case "generation invalidation" `Quick
            test_generation_invalidation;
          Alcotest.test_case "window-length buckets" `Quick
            test_window_buckets;
          Alcotest.test_case "poisoning and replan" `Quick test_replan_flow;
          Alcotest.test_case "concurrent counter exactness" `Quick
            test_concurrent_counters;
          Alcotest.test_case "invalidation after ingest" `Quick
            test_invalidation_after_ingest;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_cached_equals_fresh ]
      );
    ]
