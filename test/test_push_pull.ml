(* Tests for the effect-handler push-to-pull inversion and the
   Engine.volcano bridge. *)

open Semantics

module Int_gen = Temporal.Push_pull.Make (struct
  type t = int
end)

let drain next =
  let rec go acc =
    match next () with Some x -> go (x :: acc) | None -> List.rev acc
  in
  go []

let test_basic_generator () =
  let next = Int_gen.to_pull (fun emit -> List.iter emit [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "all values" [ 1; 2; 3 ] (drain next);
  Alcotest.(check (option int)) "stays finished" None (next ())

let test_empty_producer () =
  let next = Int_gen.to_pull (fun _ -> ()) in
  Alcotest.(check (option int)) "immediately done" None (next ());
  Alcotest.(check (option int)) "still done" None (next ())

let test_lazy_production () =
  (* the producer must not run ahead of the consumer *)
  let produced = ref 0 in
  let next =
    Int_gen.to_pull (fun emit ->
        for i = 1 to 100 do
          incr produced;
          emit i
        done)
  in
  Alcotest.(check int) "nothing before first pull" 0 !produced;
  ignore (next ());
  Alcotest.(check int) "one step per pull" 1 !produced;
  ignore (next ());
  ignore (next ());
  Alcotest.(check int) "three steps" 3 !produced

let test_producer_exception_escapes () =
  let next =
    Int_gen.to_pull (fun emit ->
        emit 1;
        failwith "boom")
  in
  Alcotest.(check (option int)) "first value" (Some 1) (next ());
  Alcotest.check_raises "exception on the failing step" (Failure "boom")
    (fun () -> ignore (next ()));
  Alcotest.(check (option int)) "finished after failure" None (next ())

let test_large_stream () =
  let n = 50_000 in
  let next = Int_gen.to_pull (fun emit -> for i = 1 to n do emit i done) in
  let count = ref 0 and sum = ref 0 in
  let rec go () =
    match next () with
    | Some x ->
        incr count;
        sum := !sum + x;
        go ()
    | None -> ()
  in
  go ();
  Alcotest.(check int) "count" n !count;
  Alcotest.(check int) "sum" (n * (n + 1) / 2) !sum

(* ---------- Engine.volcano ---------- *)

let test_volcano_bridge_counts () =
  let g =
    Test_util.random_graph ~seed:91 ~n_vertices:6 ~n_edges:100 ~n_labels:2
      ~domain:40 ~max_len:12 ()
  in
  let engine = Workload.Engine.prepare g in
  let q =
    Query.make ~n_vars:3
      ~edges:[ (0, 0, 1); (1, 0, 2) ]
      ~window:(Temporal.Interval.make 0 39)
  in
  Array.iter
    (fun m ->
      let expected = Workload.Engine.count engine m q in
      let op = Workload.Engine.volcano engine m q in
      Alcotest.(check int)
        (Workload.Engine.method_name m ^ " via volcano")
        expected (Relops.Volcano.count op))
    Workload.Engine.all_methods

let test_volcano_bridge_batches_and_tuples () =
  let g =
    Test_util.random_graph ~seed:92 ~n_vertices:4 ~n_edges:120 ~n_labels:1
      ~domain:20 ~max_len:20 ()
  in
  let engine = Workload.Engine.prepare g in
  let q =
    Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ]
      ~window:(Temporal.Interval.make 0 19)
  in
  let op = Workload.Engine.volcano engine Workload.Engine.Tsrjoin q in
  let n = ref 0 in
  let rec go () =
    match Relops.Volcano.next op with
    | None -> ()
    | Some batch ->
        Alcotest.(check bool) "batch bounded" true
          (Array.length batch <= Relops.Volcano.batch_size);
        Array.iter
          (fun tup ->
            Alcotest.(check bool) "complete tuple" true
              (Relops.Tuple.is_complete tup);
            (* tuples carry consistent bindings: verify through the
               match checker *)
            match
              Match_result.verify g q (Relops.Tuple.to_match tup)
            with
            | Ok () -> ()
            | Error e -> Alcotest.failf "bad tuple from bridge: %s" e)
          batch;
        n := !n + Array.length batch;
        go ()
  in
  go ();
  Alcotest.(check int) "all matches streamed" (Workload.Engine.count engine Workload.Engine.Tsrjoin q) !n

let () =
  Alcotest.run "push_pull"
    [
      ( "generator",
        [
          Alcotest.test_case "basic" `Quick test_basic_generator;
          Alcotest.test_case "empty" `Quick test_empty_producer;
          Alcotest.test_case "lazy" `Quick test_lazy_production;
          Alcotest.test_case "exceptions escape" `Quick test_producer_exception_escapes;
          Alcotest.test_case "large stream" `Quick test_large_stream;
        ] );
      ( "volcano-bridge",
        [
          Alcotest.test_case "counts agree (all engines)" `Quick test_volcano_bridge_counts;
          Alcotest.test_case "batch bounds + tuple integrity" `Quick
            test_volcano_bridge_batches_and_tuples;
        ] );
    ]
