(* Tests for the textual query language: lexing/parsing, compilation
   against a graph, error reporting, and end-to-end equivalence with
   programmatically built queries. *)

open Semantics

let graph () =
  Tgraph.Graph.of_edge_list ~labels:(Tgraph.Label.of_names [| "a"; "b"; "c" |])
    [
      (0, 1, 0, 0, 5); (1, 2, 1, 3, 8); (2, 0, 2, 4, 9); (0, 2, 1, 2, 4);
    ]

let ok = function
  | Ok v -> v
  | Error (e : Qlang.error) ->
      Alcotest.failf "parse failed at %d: %s" e.Qlang.position e.Qlang.message

let test_parse_simple () =
  let ast = ok (Qlang.parse "MATCH (x)-[a]->(y) IN [0, 10]") in
  Alcotest.(check int) "edges" 1 (Qlang.n_edges ast);
  Alcotest.(check int) "vars" 2 (Qlang.n_vars ast);
  Alcotest.(check (option (pair int int))) "window" (Some (0, 10)) (Qlang.window ast);
  Alcotest.(check (array string)) "names" [| "x"; "y" |] (Qlang.var_names ast)

let test_parse_chain_sugar () =
  let ast = ok (Qlang.parse "match (x)-[a]->(y)-[b]->(z)-[c]->(x)") in
  Alcotest.(check int) "edges" 3 (Qlang.n_edges ast);
  Alcotest.(check int) "vars" 3 (Qlang.n_vars ast);
  Alcotest.(check (option (pair int int))) "no window" None (Qlang.window ast)

let test_parse_incoming_edges () =
  let ast = ok (Qlang.parse "MATCH (hub)<-[a]-(f1), (hub)<-[b]-(f2) IN [1, 2]") in
  Alcotest.(check int) "edges" 2 (Qlang.n_edges ast);
  Alcotest.(check int) "vars" 3 (Qlang.n_vars ast)

let test_parse_anonymous () =
  let ast = ok (Qlang.parse "MATCH ()-[a]->()-[b]->()") in
  Alcotest.(check int) "three fresh vars" 3 (Qlang.n_vars ast);
  Alcotest.(check (array string)) "names" [| "$0"; "$1"; "$2" |] (Qlang.var_names ast)

let test_parse_comments_and_case () =
  let ast =
    ok
      (Qlang.parse
         "# temporal clique\nMaTcH (x)-[a]->(y) # star\nIn [3, 4]")
  in
  Alcotest.(check int) "edges" 1 (Qlang.n_edges ast)

let test_parse_errors () =
  let fails input =
    match Qlang.parse input with
    | Ok _ -> Alcotest.failf "expected %S to fail" input
    | Error _ -> ()
  in
  fails "";
  fails "MATCH";
  fails "(x)-[a]->(y)";
  fails "MATCH (x)";
  fails "MATCH (x)-[a]->";
  fails "MATCH (x)-[a]-(y)";
  fails "MATCH (x)-[]->(y)";
  fails "MATCH (x)-[a]->(y) IN [5]";
  fails "MATCH (x)-[a]->(y) IN [9, 5]";
  fails "MATCH (x)-[a]->(y) trailing";
  fails "MATCH (x)-[a]->(y) IN [1, 2] extra"

let test_error_positions () =
  match Qlang.parse "MATCH (x)=[a]->(y)" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> Alcotest.(check int) "position of '='" 9 e.Qlang.position

let test_compile_resolves_labels () =
  let g = graph () in
  let q =
    Result.get_ok
      (Qlang.parse_and_compile g "MATCH (x)-[a]->(y)-[b]->(z) IN [0, 9]")
  in
  Alcotest.(check int) "edges" 2 (Query.n_edges q);
  Alcotest.(check int) "label a" 0 (Query.edge q 0).Query.lbl;
  Alcotest.(check int) "label b" 1 (Query.edge q 1).Query.lbl;
  Alcotest.(check int) "shared var" (Query.edge q 0).Query.dst_var
    (Query.edge q 1).Query.src_var

let test_compile_unknown_label () =
  let g = graph () in
  match Qlang.parse_and_compile g "MATCH (x)-[zzz]->(y) IN [0, 9]" with
  | Ok _ -> Alcotest.fail "expected unknown-label error"
  | Error msg ->
      Alcotest.(check bool) "mentions the label" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg 'z'))

let test_compile_needs_window () =
  let g = graph () in
  (match Qlang.parse_and_compile g "MATCH (x)-[a]->(y)" with
  | Ok _ -> Alcotest.fail "expected missing-window error"
  | Error _ -> ());
  match
    Qlang.parse_and_compile ~default_window:(Temporal.Interval.make 0 9) g
      "MATCH (x)-[a]->(y)"
  with
  | Ok q -> Alcotest.(check int) "default window" 9 (Query.we q)
  | Error e -> Alcotest.fail e

let test_end_to_end_equivalence () =
  (* the textual triangle equals the programmatic triangle *)
  let g =
    Test_util.random_graph ~seed:55 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let textual =
    Result.get_ok
      (Qlang.parse_and_compile g
         "MATCH (x)-[l0]->(y)-[l1]->(z)-[l2]->(x) IN [5, 30]")
  in
  let programmatic =
    Query.make ~n_vars:3
      ~edges:[ (0, 0, 1); (1, 1, 2); (2, 2, 0) ]
      ~window:(Temporal.Interval.make 5 30)
  in
  let tai = Tcsq_core.Tai.build g in
  Test_util.check_same_results ~msg:"qlang vs programmatic"
    (Tcsq_core.Tsrjoin.evaluate tai programmatic)
    (Tcsq_core.Tsrjoin.evaluate tai textual)

let test_self_loop () =
  let g = Tgraph.Graph.of_edge_list [ (0, 0, 0, 1, 5); (0, 1, 0, 2, 6) ] in
  let q =
    Result.get_ok (Qlang.parse_and_compile g "MATCH (x)-[l0]->(x) IN [0, 9]")
  in
  let tai = Tcsq_core.Tai.build g in
  match Tcsq_core.Tsrjoin.evaluate tai q with
  | [ m ] -> Alcotest.(check int) "self loop edge" 0 m.Match_result.edges.(0)
  | ms -> Alcotest.failf "expected the self loop only, got %d" (List.length ms)

let test_wildcard_label () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5); (0, 2, 1, 2, 8) ] in
  let q =
    Result.get_ok (Qlang.parse_and_compile g "MATCH (x)-[*]->(y) IN [0, 9]")
  in
  Alcotest.(check int) "wildcard label" Query.any_label (Query.edge q 0).Query.lbl;
  let tai = Tcsq_core.Tai.build g in
  Alcotest.(check int) "matches both labels" 2
    (List.length (Tcsq_core.Tsrjoin.evaluate tai q));
  (* render keeps the star *)
  let text = Qlang.render g q in
  Alcotest.(check bool) "renders star" true
    (Option.is_some (String.index_opt text '*'));
  Alcotest.(check int) "reparses" 2
    (List.length
       (Tcsq_core.Tsrjoin.evaluate tai
          (Result.get_ok (Qlang.parse_and_compile g text))))

let test_render_roundtrip () =
  let g =
    Test_util.random_graph ~seed:77 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tcsq_core.Tai.build g in
  List.iteri
    (fun i q ->
      let text = Qlang.render g q in
      match Qlang.parse_and_compile g text with
      | Error e -> Alcotest.failf "query %d: %S did not reparse: %s" i text e
      | Ok q' ->
          Test_util.check_same_results
            ~msg:(Printf.sprintf "query %d roundtrip (%s)" i text)
            (Tcsq_core.Tsrjoin.evaluate tai q)
            (Tcsq_core.Tsrjoin.evaluate tai q'))
    (Test_util.query_pool ~n_labels:3 ~window:(Temporal.Interval.make 8 30))

let prop_render_roundtrip_random =
  QCheck.Test.make ~name:"render/parse roundtrip on random structures"
    ~count:150
    QCheck.(pair (int_range 0 100_000) (int_range 1 10))
    (fun (qseed, d) ->
      let g =
        Test_util.random_graph ~seed:4242 ~n_vertices:6 ~n_edges:80 ~n_labels:3
          ~domain:40 ~max_len:10 ()
      in
      let q =
        Query.with_min_duration
          (Testkit.random_query ~seed:qseed ~n_labels:3 ~max_edges:4
             ~window:(Temporal.Interval.make 5 30))
          d
      in
      let tai = Tcsq_core.Tai.build g in
      match Qlang.parse_and_compile g (Qlang.render g q) with
      | Error _ -> false
      | Ok q' ->
          Match_result.Result_set.equal
            (Match_result.Result_set.of_list (Tcsq_core.Tsrjoin.evaluate tai q))
            (Match_result.Result_set.of_list (Tcsq_core.Tsrjoin.evaluate tai q')))

let () =
  Alcotest.run "qlang"
    [
      ( "parse",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "chain sugar" `Quick test_parse_chain_sugar;
          Alcotest.test_case "incoming edges" `Quick test_parse_incoming_edges;
          Alcotest.test_case "anonymous nodes" `Quick test_parse_anonymous;
          Alcotest.test_case "comments and case" `Quick test_parse_comments_and_case;
          Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
        ] );
      ( "compile",
        [
          Alcotest.test_case "resolves labels" `Quick test_compile_resolves_labels;
          Alcotest.test_case "unknown label" `Quick test_compile_unknown_label;
          Alcotest.test_case "window defaulting" `Quick test_compile_needs_window;
          Alcotest.test_case "end-to-end equivalence" `Quick test_end_to_end_equivalence;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "wildcard label" `Quick test_wildcard_label;
          Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_render_roundtrip_random ] );
    ]
