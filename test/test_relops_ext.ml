(* Differential and endpoint-convention tests for the extended
   relational operators: NOT antijoin, EXISTS semijoin, WHERE Allen
   constraints, and aggregates. Every operator family is checked
   naive-oracle-vs-engine across all four methods; hand-built graphs
   pin the closed-interval +1 conventions (a single shared tick is
   OVERLAPS, adjacency is MEETS and already clique-infeasible); QCheck
   properties tie Interval's closed semantics to the Allen
   classification and the Ivlset arithmetic the operators run on. *)

open Semantics
module RS = Match_result.Result_set
module I = Temporal.Interval
module Allen = Temporal.Allen
module Ivlset = Temporal.Ivlset

let eok g s =
  match Qlang.parse_and_compile_ext g s with
  | Ok eq -> eq
  | Error msg -> Alcotest.failf "parse failed on %S: %s" s msg

let eid g src dst =
  match
    Tgraph.Graph.fold_edges
      (fun acc e ->
        if Tgraph.Edge.src e = src && Tgraph.Edge.dst e = dst then
          Some (Tgraph.Edge.id e)
        else acc)
      None g
  with
  | Some id -> id
  | None -> Alcotest.failf "no edge %d->%d in the test graph" src dst

let check_rs name expected actual =
  let expected = RS.of_list expected and actual = RS.of_list actual in
  match RS.diff_summary ~expected ~actual with
  | None -> ()
  | Some d -> Alcotest.failf "%s: %s" name d

(* every engine method must agree with the naive extended oracle *)
let check_all_methods name g eq =
  let expected = RS.of_list (Naive.evaluate_ext g eq) in
  let engine = Workload.Engine.prepare g in
  Array.iter
    (fun m ->
      let actual = RS.of_list (Workload.Engine.evaluate_ext engine m eq) in
      match RS.diff_summary ~expected ~actual with
      | None -> ()
      | Some d ->
          Alcotest.failf "%s: %s diverges from naive: %s" name
            (Workload.Engine.method_name m) d)
    Workload.Engine.all_methods

(* ---- hand-built antijoin / semijoin cases ---- *)

(* one a-edge with a b-edge out of its head at [3,5], and a second
   a-edge whose head has no b successor at all *)
let hand_graph () =
  Tgraph.Graph.of_edge_list
    ~labels:(Tgraph.Label.of_names [| "a"; "b"; "c" |])
    [ (0, 1, 0, 0, 9); (1, 2, 1, 3, 5); (3, 4, 0, 2, 7) ]

let test_antijoin_subtracts () =
  let g = hand_graph () in
  let e0 = eid g 0 1 and e2 = eid g 3 4 in
  let mk es ts te = Match_result.make es (I.make ts te) in
  let eq = eok g "MATCH (x)-[a]->(y) NOT (y)-[b]->() IN [0, 9]" in
  check_rs "matched union carved out of the lifespan"
    [ mk [| e0 |] 0 2; mk [| e0 |] 6 9; mk [| e2 |] 2 7 ]
    (Naive.evaluate_ext g eq);
  check_all_methods "antijoin" g eq;
  (* closed lengths through the duration floor: [0,2] lasts 3 ticks *)
  let at d = Naive.evaluate_ext g (Equery.with_min_duration eq d) in
  check_rs "LASTING 3 keeps the 3-tick piece"
    [ mk [| e0 |] 0 2; mk [| e0 |] 6 9; mk [| e2 |] 2 7 ]
    (at 3);
  check_rs "LASTING 4 drops exactly the 3-tick piece"
    [ mk [| e0 |] 6 9; mk [| e2 |] 2 7 ]
    (at 4);
  check_all_methods "durable antijoin" g (Equery.with_min_duration eq 4)

let test_empty_antijoin_is_plain () =
  let g = hand_graph () in
  let plainq = eok g "MATCH (x)-[a]->(y) IN [0, 9]" in
  (* label c exists in the vocabulary but matches no edge: the antijoin
     subtracts nothing and must equal the plain join exactly *)
  let eq = eok g "MATCH (x)-[a]->(y) NOT (y)-[c]->() IN [0, 9]" in
  check_rs "NOT over an unmatched label = plain join"
    (Naive.evaluate_ext g plainq)
    (Naive.evaluate_ext g eq);
  check_all_methods "empty antijoin" g eq

let test_semijoin_intersects () =
  let g = hand_graph () in
  let e0 = eid g 0 1 in
  let eq = eok g "MATCH (x)-[a]->(y) EXISTS (y)-[b]->() IN [0, 9]" in
  check_rs "lifespan intersected with the witness union"
    [ Match_result.make [| e0 |] (I.make 3 5) ]
    (Naive.evaluate_ext g eq);
  check_all_methods "semijoin" g eq;
  (* a witness nothing matches empties the whole result *)
  let none = eok g "MATCH (x)-[a]->(y) EXISTS (y)-[c]->() IN [0, 9]" in
  check_rs "EXISTS over an unmatched label is empty" []
    (Naive.evaluate_ext g none);
  check_all_methods "empty semijoin" g none

(* ---- Allen endpoint conventions ---- *)

(* e0/e1 share exactly tick 5 (OVERLAPS under closed intervals); e2/e3
   are adjacent (4+1 = 5, MEETS) so they have no common lifespan and the
   clique semantics already excludes the pair *)
let allen_graph () =
  Tgraph.Graph.of_edge_list
    ~labels:(Tgraph.Label.of_names [| "a"; "b" |])
    [ (0, 1, 0, 0, 5); (1, 2, 1, 5, 9); (3, 4, 0, 0, 4); (4, 5, 1, 5, 9) ]

let test_classify_conventions () =
  let c a b = Allen.to_string (Allen.classify a b) in
  Alcotest.(check string)
    "one shared tick is overlaps" "overlaps"
    (c (I.make 0 5) (I.make 5 9));
  Alcotest.(check string)
    "adjacent (te+1 = ts) is meets" "meets"
    (c (I.make 0 4) (I.make 5 9));
  Alcotest.(check string)
    "a one-tick gap is before" "before"
    (c (I.make 0 3) (I.make 5 9));
  Alcotest.(check string)
    "shared tick reversed is overlapped-by" "overlapped-by"
    (c (I.make 5 9) (I.make 0 5));
  Alcotest.(check string)
    "adjacency reversed is met-by" "met-by"
    (c (I.make 5 9) (I.make 0 4))

let test_allen_filters () =
  let g = allen_graph () in
  let e0 = eid g 0 1 and e1 = eid g 1 2 in
  let touching = [ Match_result.make [| e0; e1 |] (I.make 5 5) ] in
  let q s = eok g ("MATCH (x)-[a0: a]->(y)-[a1: b]->(z)" ^ s ^ " IN [0, 9]") in
  check_rs "only the tick-sharing pair forms a clique" touching
    (Naive.evaluate_ext g (q ""));
  check_rs "OVERLAPS keeps the single shared tick" touching
    (Naive.evaluate_ext g (q " WHERE a0 OVERLAPS a1"));
  check_rs "MEETS finds nothing: adjacent edges are not a clique" []
    (Naive.evaluate_ext g (q " WHERE a0 MEETS a1"));
  check_rs "BEFORE finds nothing either" []
    (Naive.evaluate_ext g (q " WHERE a0 BEFORE a1"));
  check_rs "the inverse form keeps the same match" touching
    (Naive.evaluate_ext g (q " WHERE a1 OVERLAPPED_BY a0"));
  List.iter
    (fun s -> check_all_methods ("allen" ^ s) g (q s))
    [
      "";
      " WHERE a0 OVERLAPS a1";
      " WHERE a0 MEETS a1";
      " WHERE a0 BEFORE a1";
      " WHERE a1 OVERLAPPED_BY a0";
    ]

(* ---- aggregates ---- *)

let test_aggregates () =
  let g = hand_graph () in
  let base = Naive.evaluate_ext g (eok g "MATCH (x)-[a]->(y) IN [0, 9]") in
  let engine = Workload.Engine.prepare g in
  let cq = eok g "MATCH (x)-[a]->(y) IN [0, 9] COUNT" in
  Alcotest.(check int) "naive count" (List.length base) (Naive.count_ext g cq);
  Array.iter
    (fun m ->
      Alcotest.(check int)
        (Workload.Engine.method_name m ^ " count")
        (List.length base)
        (Workload.Engine.count_ext engine m cq))
    Workload.Engine.all_methods;
  let tq = eok g "MATCH (x)-[a]->(y) IN [0, 9] TOP 1" in
  let expected = Analytics.top_durable ~k:1 base in
  Alcotest.(check int) "top-1 selects one match" 1 (List.length expected);
  check_rs "naive TOP 1 = durability selection" expected
    (Naive.evaluate_ext g tq);
  Array.iter
    (fun m ->
      check_rs
        (Workload.Engine.method_name m ^ " TOP 1")
        expected
        (Workload.Engine.evaluate_ext engine m tq))
    Workload.Engine.all_methods

(* ---- per-family differential over random graphs ---- *)

let clause_of q lbl =
  {
    Equery.lbl;
    src = Equery.Var (Query.edge q 0).Query.src_var;
    dst = Equery.Any;
  }

let family_case name mk () =
  for seed = 0 to 7 do
    let g =
      Testkit.random_graph ~seed ~n_vertices:5 ~n_edges:30 ~n_labels:3
        ~domain:20 ~max_len:6 ()
    in
    let window = I.make 0 19 in
    let q =
      Testkit.random_query ~seed:((seed * 3) + 1) ~n_labels:3 ~max_edges:2
        ~window
    in
    check_all_methods (Printf.sprintf "%s seed %d" name seed) g (mk seed q)
  done

let anti_family seed q = Equery.with_anti (Equery.plain q) [ clause_of q (seed mod 3) ]
let semi_family seed q = Equery.with_semi (Equery.plain q) [ clause_of q (seed mod 3) ]

let allen_family seed q =
  if Query.n_edges q < 2 then Equery.plain q
  else
    Equery.with_allen (Equery.plain q)
      [ (0, Allen.all.(seed mod Array.length Allen.all), 1) ]

let top_family seed q = Equery.make ~agg:(Equery.Top (1 + (seed mod 3))) q

(* ---- properties ---- *)

(* the closed-interval conventions behind the operators: Before/Meets
   sit one tick apart, overlap agrees between the Allen classification,
   Interval, and Ivlset, and adjacency fuses in the interval sets *)
let prop_allen_conventions =
  QCheck.Test.make ~name:"closed-interval Allen conventions" ~count:500
    QCheck.(
      quad (int_range 0 40) (int_range 0 8) (int_range 0 40) (int_range 0 8))
    (fun (sa, la, sb, lb) ->
      let a = I.make sa (sa + la) and b = I.make sb (sb + lb) in
      let rel = Allen.classify a b in
      let sa' = Ivlset.of_interval a and sb' = Ivlset.of_interval b in
      let claim name cond =
        if not cond then
          QCheck.Test.fail_reportf "%s violated for [%d,%d] %s [%d,%d]" name
            (I.ts a) (I.te a) (Allen.to_string rel) (I.ts b) (I.te b)
      in
      claim "Before = strict gap" ((rel = Allen.Before) = (I.te a + 1 < I.ts b));
      claim "Meets = adjacency" ((rel = Allen.Meets) = (I.te a + 1 = I.ts b));
      claim "overlap agreement" (Allen.overlaps_in_time rel = I.overlaps a b);
      claim "intersection agreement"
        ((not (Ivlset.is_empty (Ivlset.inter sa' sb'))) = I.overlaps a b);
      claim "classify commutes with inverse"
        (Allen.classify b a = Allen.inverse rel);
      claim "union fuses unless a gap separates"
        (List.length (Ivlset.to_list (Ivlset.union sa' sb')) = 1
        = (rel <> Allen.Before && rel <> Allen.After));
      claim "difference empties exactly on containment"
        (Ivlset.is_empty (Ivlset.diff sa' sb')
        = List.mem rel [ Allen.Starts; Allen.During; Allen.Finishes; Allen.Equal ]);
      true)

let prop_render_roundtrip =
  QCheck.Test.make ~name:"render_ext / parse_and_compile_ext fixpoint"
    ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g =
        Testkit.random_graph ~seed ~n_vertices:5 ~n_edges:20 ~n_labels:3
          ~domain:20 ~max_len:6 ()
      in
      let eq =
        Testkit.random_equery ~seed:((seed * 5) + 2) ~n_labels:3 ~max_edges:3
          ~window:(I.make 0 19)
      in
      (* roundtripping renumbers variables by appearance, so the render
         of the reparse is the canonical form: it must be a true
         fixpoint, and the reparse must keep the same matches *)
      let reparse s =
        match Qlang.parse_and_compile_ext g s with
        | Ok eq -> eq
        | Error msg ->
            QCheck.Test.fail_reportf "reparse failed on %S: %s" s msg
      in
      let eq' = reparse (Qlang.render_ext g eq) in
      let s' = Qlang.render_ext g eq' in
      let s'' = Qlang.render_ext g (reparse s') in
      if not (String.equal s' s'') then
        QCheck.Test.fail_reportf "canonical form is not a fixpoint:\n%S\n%S" s'
          s'';
      if
        not
          (RS.equal
             (RS.of_list (Naive.evaluate_ext g eq))
             (RS.of_list (Naive.evaluate_ext g eq')))
      then QCheck.Test.fail_reportf "roundtrip changed the matches of %S" s';
      true)

let prop_differential =
  QCheck.Test.make ~name:"extended engines = naive oracle" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g =
        Testkit.random_graph ~seed ~n_vertices:5 ~n_edges:25 ~n_labels:3
          ~domain:20 ~max_len:6 ()
      in
      let eq =
        Testkit.random_equery ~seed:((seed * 7) + 3) ~n_labels:3 ~max_edges:3
          ~window:(I.make 0 19)
      in
      let expected = RS.of_list (Naive.evaluate_ext g eq) in
      let engine = Workload.Engine.prepare g in
      Array.for_all
        (fun m ->
          let actual = RS.of_list (Workload.Engine.evaluate_ext engine m eq) in
          match RS.diff_summary ~expected ~actual with
          | None -> true
          | Some d ->
              QCheck.Test.fail_reportf "%s diverges from naive: %s"
                (Workload.Engine.method_name m) d)
        Workload.Engine.all_methods)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "relops_ext"
    [
      ( "antijoin",
        [
          Alcotest.test_case "subtracts matched intervals" `Quick
            test_antijoin_subtracts;
          Alcotest.test_case "empty antijoin = plain join" `Quick
            test_empty_antijoin_is_plain;
          Alcotest.test_case "differential" `Quick
            (family_case "antijoin" anti_family);
        ] );
      ( "semijoin",
        [
          Alcotest.test_case "intersects witness union" `Quick
            test_semijoin_intersects;
          Alcotest.test_case "differential" `Quick
            (family_case "semijoin" semi_family);
        ] );
      ( "allen",
        [
          Alcotest.test_case "classify endpoint conventions" `Quick
            test_classify_conventions;
          Alcotest.test_case "meets vs overlaps off by one" `Quick
            test_allen_filters;
          Alcotest.test_case "differential" `Quick
            (family_case "allen" allen_family);
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "COUNT and TOP k" `Quick test_aggregates;
          Alcotest.test_case "differential" `Quick
            (family_case "top" top_family);
        ] );
      ( "properties",
        qsuite
          [ prop_allen_conventions; prop_render_roundtrip; prop_differential ]
      );
    ]
