(* Tests for the problem definition: queries, patterns, matches, the
   naive oracle. *)

open Semantics

let window a b = Temporal.Interval.make a b

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ---------- Query ---------- *)

let test_query_make () =
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 10)
  in
  Alcotest.(check int) "n_edges" 2 (Query.n_edges q);
  Alcotest.(check int) "n_vars" 3 (Query.n_vars q);
  Alcotest.(check int) "ws" 0 (Query.ws q);
  Alcotest.(check int) "we" 10 (Query.we q);
  check_invalid "empty edges" (fun () ->
      ignore (Query.make ~n_vars:1 ~edges:[] ~window:(window 0 1)));
  check_invalid "var out of range" (fun () ->
      ignore (Query.make ~n_vars:2 ~edges:[ (0, 0, 2) ] ~window:(window 0 1)))

let test_query_adjacent () =
  let q =
    Query.make ~n_vars:3
      ~edges:[ (0, 0, 1); (1, 1, 2); (2, 2, 2) ]
      ~window:(window 0 10)
  in
  Alcotest.(check (list int)) "adjacent to 1" [ 0; 1 ]
    (List.map (fun e -> e.Query.idx) (Query.adjacent q 1));
  (* self loop appears once *)
  Alcotest.(check (list int)) "self loop once" [ 1; 2 ]
    (List.map (fun e -> e.Query.idx) (Query.adjacent q 2));
  let e = Query.edge q 1 in
  Alcotest.(check int) "other endpoint" 2 (Query.other_endpoint e 1);
  check_invalid "not an endpoint" (fun () ->
      ignore (Query.other_endpoint e 0))

let test_query_connected () =
  let c =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (0, 1, 2) ] ~window:(window 0 1)
  in
  Alcotest.(check bool) "connected" true (Query.is_connected c);
  let d =
    Query.make ~n_vars:4 ~edges:[ (0, 0, 1); (0, 2, 3) ] ~window:(window 0 1)
  in
  Alcotest.(check bool) "disconnected" false (Query.is_connected d)

(* ---------- Pattern ---------- *)

let labels k = Array.init k Fun.id

let test_pattern_shapes () =
  let star = Pattern.instantiate (Pattern.Star 3) ~labels:(labels 3) ~window:(window 0 9) in
  Alcotest.(check int) "star edges" 3 (Query.n_edges star);
  Alcotest.(check int) "star vars" 4 (Query.n_vars star);
  Alcotest.(check bool) "star connected" true (Query.is_connected star);
  let chain = Pattern.instantiate (Pattern.Chain 4) ~labels:(labels 4) ~window:(window 0 9) in
  Alcotest.(check int) "chain vars" 5 (Query.n_vars chain);
  let cycle = Pattern.instantiate (Pattern.Cycle 4) ~labels:(labels 4) ~window:(window 0 9) in
  Alcotest.(check int) "cycle vars" 4 (Query.n_vars cycle);
  Alcotest.(check bool) "cycle connected" true (Query.is_connected cycle);
  let t = Pattern.instantiate (Pattern.T_shape 4) ~labels:(labels 4) ~window:(window 0 9) in
  Alcotest.(check int) "tshape vars" 5 (Query.n_vars t);
  Alcotest.(check bool) "tshape connected" true (Query.is_connected t)

let test_pattern_validation () =
  check_invalid "cycle 2" (fun () -> Pattern.validate (Pattern.Cycle 2));
  check_invalid "star 0" (fun () -> Pattern.validate (Pattern.Star 0));
  check_invalid "label count" (fun () ->
      ignore
        (Pattern.instantiate (Pattern.Star 3) ~labels:(labels 2) ~window:(window 0 1)))

let test_pattern_strings () =
  let cases =
    [
      ("3-star", Pattern.Star 3);
      ("star4", Pattern.Star 4);
      ("4-chain", Pattern.Chain 4);
      ("triangle", Pattern.Cycle 3);
      ("4-circle", Pattern.Cycle 4);
      ("cycle5", Pattern.Cycle 5);
      ("tshape4", Pattern.T_shape 4);
    ]
  in
  List.iter
    (fun (s, shape) ->
      match Pattern.of_string s with
      | Some sh when sh = shape -> ()
      | Some sh -> Alcotest.failf "%s parsed as %s" s (Pattern.to_string sh)
      | None -> Alcotest.failf "%s did not parse" s)
    cases;
  Alcotest.(check bool) "garbage" true (Pattern.of_string "pentagram" = None);
  Alcotest.(check bool) "degenerate" true (Pattern.of_string "2-circle" = None);
  (* to_string/of_string roundtrip over the paper set *)
  List.iter
    (fun sh ->
      match Pattern.of_string (Pattern.to_string sh) with
      | Some sh' when sh' = sh -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Pattern.to_string sh))
    Pattern.paper_set

(* ---------- Match verification ---------- *)

let graph () =
  Tgraph.Graph.of_edge_list
    [ (0, 1, 0, 0, 5); (0, 2, 1, 3, 8); (1, 2, 0, 4, 6) ]

let test_verify_accepts () =
  let g = graph () in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 10)
  in
  let m = Match_result.make [| 0; 1 |] (Temporal.Interval.make 3 5) in
  (match Match_result.verify g q m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_verify_rejects () =
  let g = graph () in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 10)
  in
  let bad_life = Match_result.make [| 0; 1 |] (Temporal.Interval.make 3 6) in
  Alcotest.(check bool) "wrong lifespan" true
    (Result.is_error (Match_result.verify g q bad_life));
  let bad_label = Match_result.make [| 1; 1 |] (Temporal.Interval.make 3 8) in
  Alcotest.(check bool) "label mismatch" true
    (Result.is_error (Match_result.verify g q bad_label));
  (* e2 = 1->2 can't bind query edge 0 (wants source bound shared with
     edge 1's source) together with e1 = 0->2 *)
  let bad_binding = Match_result.make [| 2; 1 |] (Temporal.Interval.make 4 6) in
  Alcotest.(check bool) "binding conflict" true
    (Result.is_error (Match_result.verify g q bad_binding))

let test_result_set () =
  let m1 = Match_result.make [| 1; 2 |] (window 0 1) in
  let m2 = Match_result.make [| 1; 3 |] (window 0 1) in
  let s = Match_result.Result_set.of_list [ m2; m1; m1 ] in
  Alcotest.(check int) "dedup" 2 (Match_result.Result_set.cardinality s);
  let s' = Match_result.Result_set.of_list [ m1; m2 ] in
  Alcotest.(check bool) "order insensitive" true (Match_result.Result_set.equal s s');
  let s'' = Match_result.Result_set.of_list [ m1 ] in
  Alcotest.(check bool) "different" false (Match_result.Result_set.equal s s'');
  Alcotest.(check bool) "diff summary reports" true
    (Match_result.Result_set.diff_summary ~expected:s ~actual:s'' <> None)

(* ---------- Naive oracle ---------- *)

let test_naive_single_edge () =
  let g = graph () in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 10) in
  let ms = Naive.evaluate g q in
  (* homomorphism semantics: both label-0 edges match the single query
     edge *)
  Alcotest.(check (list int))
    "matches" [ 0; 2 ]
    (List.sort compare (List.map (fun m -> m.Match_result.edges.(0)) ms))

let test_naive_window_excludes () =
  let g = graph () in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 7 10) in
  Alcotest.(check int) "label-0 edges end by 6: no match" 0 (Naive.count g q)

let test_naive_temporal_clique () =
  (* 2-star: e0 [0,5] and e1 [3,8] jointly overlap on [3,5] *)
  let g = graph () in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 10)
  in
  match Naive.evaluate g q with
  | [ m ] ->
      Alcotest.(check (list int)) "edges" [ 0; 1 ] (Array.to_list m.Match_result.edges);
      Alcotest.(check int) "life start" 3 (Temporal.Interval.ts m.Match_result.life);
      Alcotest.(check int) "life end" 5 (Temporal.Interval.te m.Match_result.life)
  | ms -> Alcotest.failf "expected 1 match, got %d" (List.length ms)

let test_naive_disjoint_intervals () =
  (* edges that share topology but never overlap in time *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 2); (0, 2, 1, 5, 9) ] in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 10)
  in
  Alcotest.(check int) "no temporal clique" 0 (Naive.count g q)

let test_naive_limit () =
  let g =
    Tgraph.Graph.of_edge_list
      (List.init 10 (fun i -> (0, i + 1, 0, 0, 10)))
  in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 10) in
  Alcotest.(check int) "limited" 3 (List.length (Naive.evaluate ~limit:3 g q))

let test_naive_verifies () =
  (* every oracle match passes the verifier, across the query pool *)
  let g =
    Test_util.random_graph ~seed:42 ~n_vertices:6 ~n_edges:60 ~n_labels:3
      ~domain:30 ~max_len:8 ()
  in
  List.iter
    (fun q ->
      List.iter
        (fun m ->
          match Match_result.verify g q m with
          | Ok () -> ()
          | Error e -> Alcotest.failf "oracle produced invalid match: %s" e)
        (Naive.evaluate g q))
    (Test_util.query_pool ~n_labels:3 ~window:(window 5 25))

(* ---------- Run_stats ---------- *)

let test_stats_limits () =
  let stats =
    Run_stats.create ~limits:{ Run_stats.max_results = 2; max_intermediate = 10 } ()
  in
  Run_stats.tick_result stats;
  Run_stats.tick_result stats;
  Alcotest.check_raises "result budget"
    (Run_stats.Limit_exceeded "result budget exhausted") (fun () ->
      Run_stats.tick_result stats);
  let stats2 = Run_stats.create ~limits:{ Run_stats.max_results = 100; max_intermediate = 5 } () in
  Run_stats.add_intermediate stats2 5;
  Alcotest.check_raises "intermediate budget"
    (Run_stats.Limit_exceeded "intermediate-tuple budget exhausted") (fun () ->
      Run_stats.tick_intermediate stats2)

let test_stats_merge () =
  let a = Run_stats.create () and b = Run_stats.create () in
  Run_stats.tick_scanned a;
  Run_stats.tick_scanned b;
  Run_stats.tick_binding b;
  Run_stats.merge_into a b;
  Alcotest.(check int) "scanned" 2 a.Run_stats.scanned;
  Alcotest.(check int) "bindings" 1 a.Run_stats.bindings

let () =
  Alcotest.run "semantics"
    [
      ( "query",
        [
          Alcotest.test_case "make / validation" `Quick test_query_make;
          Alcotest.test_case "adjacency" `Quick test_query_adjacent;
          Alcotest.test_case "connectivity" `Quick test_query_connected;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "shapes" `Quick test_pattern_shapes;
          Alcotest.test_case "validation" `Quick test_pattern_validation;
          Alcotest.test_case "parsing" `Quick test_pattern_strings;
        ] );
      ( "match",
        [
          Alcotest.test_case "verify accepts" `Quick test_verify_accepts;
          Alcotest.test_case "verify rejects" `Quick test_verify_rejects;
          Alcotest.test_case "result sets" `Quick test_result_set;
        ] );
      ( "naive",
        [
          Alcotest.test_case "single edge" `Quick test_naive_single_edge;
          Alcotest.test_case "window excludes" `Quick test_naive_window_excludes;
          Alcotest.test_case "temporal clique" `Quick test_naive_temporal_clique;
          Alcotest.test_case "disjoint intervals" `Quick test_naive_disjoint_intervals;
          Alcotest.test_case "limit" `Quick test_naive_limit;
          Alcotest.test_case "matches verify" `Quick test_naive_verifies;
        ] );
      ( "run_stats",
        [
          Alcotest.test_case "limits" `Quick test_stats_limits;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
    ]
