(* End-to-end tests for the query server: an in-process server on a
   Unix-domain socket, exercised by real client connections.

   - differential: concurrent clients on separate domains, one per
     processing method, each running the shared query pool; every
     response's match set must equal the naive oracle's.
   - fault injection: a non-selective query under a wall-clock deadline
     must come back as a typed truncation quickly, and the server must
     stay healthy afterwards.
   - golden metrics: the server's aggregate counters must equal the
     sums that Workload.Runner measures for the same workload.
   - admission control: a 1-worker/1-slot server pipelined six slow
     queries must shed most of them with typed "overloaded" responses.
   - protocol errors: malformed JSON, unknown labels, provably-empty
     windows, ping. *)

open Semantics
open Tcsq_server

let window a b = Temporal.Interval.make a b

(* ---- server harness ---- *)

let fresh_socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tcsq-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(workers = 2) ?(queue_depth = 16) ?default_deadline_ms g f =
  let engine = Workload.Engine.prepare g in
  let socket_path = fresh_socket_path () in
  let config =
    {
      (Server.default_config ~socket_path) with
      Server.workers;
      queue_depth;
      default_deadline_ms;
    }
  in
  let srv = Server.start config engine in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv engine socket_path)

let ok_query ?method_ ?deadline_ms ?limit ?count_only ?max_results
    ?max_intermediate client text =
  match
    Client.query ?method_ ?deadline_ms ?limit ?count_only ?max_results
      ?max_intermediate client text
  with
  | Error msg -> Alcotest.failf "transport error for %S: %s" text msg
  | Ok r -> r

(* ---- Json unit tests ---- *)

let test_json_roundtrip () =
  let roundtrip s =
    match Json.parse s with
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
    | Ok j -> (
        let printed = Json.to_string j in
        match Json.parse printed with
        | Error msg -> Alcotest.failf "reparse %S: %s" printed msg
        | Ok j' ->
            Alcotest.(check string)
              (Printf.sprintf "stable print of %S" s)
              printed (Json.to_string j'))
  in
  List.iter roundtrip
    [
      "null";
      "true";
      "[]";
      "{}";
      "-42";
      "3.5";
      "[1, [2, {\"a\": null}], \"x\"]";
      "{\"a\": 1, \"b\": [true, false], \"c\": {\"d\": \"e\"}}";
      "\"quote \\\" backslash \\\\ newline \\n tab \\t\"";
      "\"unicode \\u00e9 \\u20ac pair \\ud83d\\ude00\"";
      "1e3";
      "-0.25";
    ];
  (match Json.parse "{\"a\": 1}" with
  | Ok j ->
      Alcotest.(check (option int)) "member" (Some 1) (Json.mem_int "a" j);
      Alcotest.(check (option int)) "missing" None (Json.mem_int "b" j)
  | Error msg -> Alcotest.failf "object parse: %s" msg);
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* ---- Run_stats deadline unit test (fake clock) ---- *)

let test_deadline_fake_clock () =
  (* a clock that advances one unit per read: the deadline must fire on
     the first check after it expires, i.e. within one check interval *)
  let clock = ref 0.0 in
  let now () =
    clock := !clock +. 1.0;
    !clock
  in
  let stats =
    Run_stats.create ~deadline:{ Run_stats.expires_at = 3.0; now } ()
  in
  let ticks = ref 0 in
  (try
     while !ticks < 100 * Run_stats.deadline_check_interval do
       incr ticks;
       Run_stats.tick_scanned stats
     done;
     Alcotest.fail "deadline never fired"
   with Run_stats.Deadline_exceeded -> ());
  (* the first tick reads the clock (so an already-expired deadline
     fires immediately), then every [deadline_check_interval] ticks:
     reads land on ticks 1, interval+1, 2*interval+1, ... and the third
     read is the first at/after expiry *)
  Alcotest.(check int)
    "fired on the first check past expiry"
    ((2 * Run_stats.deadline_check_interval) + 1)
    !ticks;
  (* without a deadline nothing fires *)
  let free = Run_stats.create () in
  for _ = 1 to 10 * Run_stats.deadline_check_interval do
    Run_stats.tick_scanned free
  done

(* ---- differential: concurrent clients vs the naive oracle ---- *)

let test_concurrent_differential () =
  let g =
    Test_util.random_graph ~seed:11 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let queries = Test_util.query_pool ~n_labels:3 ~window:(window 8 30) in
  with_server ~workers:4 g (fun _srv _engine path ->
      let methods =
        [|
          Workload.Engine.Tsrjoin; Workload.Engine.Binary;
          Workload.Engine.Hybrid; Workload.Engine.Time;
        |]
      in
      (* one domain per method, each with its own connection, all hitting
         the server at once *)
      let run_method method_ =
        let client = Client.connect path in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            List.map
              (fun q ->
                let text = Qlang.render g q in
                let r = ok_query ~method_ ~limit:1_000_000 client text in
                (text, r))
              queries)
      in
      let domains =
        Array.map (fun m -> Domain.spawn (fun () -> run_method m)) methods
      in
      let per_method = Array.map Domain.join domains in
      Array.iteri
        (fun i responses ->
          let mname = Workload.Engine.method_name methods.(i) in
          List.iter2
            (fun q (text, (r : Protocol.response)) ->
              Alcotest.(check string)
                (Printf.sprintf "%s status for %s" mname text)
                "ok" r.Protocol.status;
              let expected = Naive.evaluate g q in
              Alcotest.(check (option int))
                (Printf.sprintf "%s count for %s" mname text)
                (Some (List.length expected))
                r.Protocol.count;
              Test_util.check_same_results
                ~msg:(Printf.sprintf "%s vs naive for %s" mname text)
                expected r.Protocol.matches)
            queries responses)
        per_method)

(* ---- fault injection: wall-clock deadlines ---- *)

(* 5 vertices, thousands of parallel edges, one label: a wildcard
   triangle over the full window enumerates forever unless stopped. *)
let dense_graph () =
  Test_util.random_graph ~seed:3 ~n_vertices:5 ~n_edges:4000 ~n_labels:1
    ~domain:10_000 ~max_len:5_000 ()

let non_selective = "MATCH (x)-[*]->(y)-[*]->(z)-[*]->(x) IN [0, 10000]"

let assert_healthy client path =
  Alcotest.(check bool) "ping after fault" true (Client.ping client);
  let r = ok_query ~count_only:true client "MATCH (x)-[l0]->(y) IN [0, 100]" in
  Alcotest.(check string) "query after fault" "ok" r.Protocol.status;
  let fresh = Client.connect path in
  Fun.protect
    ~finally:(fun () -> Client.close fresh)
    (fun () ->
      let r = ok_query ~count_only:true fresh "MATCH (x)-[l0]->(y) IN [0, 100]" in
      Alcotest.(check string) "fresh connection after fault" "ok"
        r.Protocol.status)

let test_deadline_truncation () =
  let g = dense_graph () in
  with_server g (fun _srv _engine path ->
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let deadline_ms = 400.0 in
          let t0 = Unix.gettimeofday () in
          let r =
            ok_query ~deadline_ms ~count_only:true ~max_results:max_int
              ~max_intermediate:max_int client non_selective
          in
          let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          Alcotest.(check string) "status" "truncated" r.Protocol.status;
          Alcotest.(check (option string))
            "reason" (Some "deadline") r.Protocol.reason;
          if elapsed_ms > 2.0 *. deadline_ms then
            Alcotest.failf "deadline overshoot: %.0fms for a %.0fms deadline"
              elapsed_ms deadline_ms;
          assert_healthy client path))

let test_budget_truncation () =
  let g = dense_graph () in
  with_server g (fun _srv _engine path ->
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let r =
            ok_query ~count_only:true ~max_results:50 ~max_intermediate:max_int
              client non_selective
          in
          Alcotest.(check string) "status" "truncated" r.Protocol.status;
          Alcotest.(check (option string))
            "reason" (Some "budget") r.Protocol.reason;
          assert_healthy client path))

(* ---- golden metrics ---- *)

let metrics_int snapshot names =
  let rec dig j = function
    | [] -> Json.int_opt j
    | name :: rest -> (
        match Json.member name j with None -> None | Some j' -> dig j' rest)
  in
  match dig snapshot names with
  | Some v -> v
  | None ->
      Alcotest.failf "metrics field %s missing" (String.concat "." names)

let test_golden_metrics () =
  let g =
    Test_util.random_graph ~seed:11 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let queries = Test_util.query_pool ~n_labels:3 ~window:(window 8 30) in
  let methods = [ Workload.Engine.Tsrjoin; Workload.Engine.Binary ] in
  with_server g (fun _srv engine path ->
      (* the reference measurements, under the same default budgets the
         server applies when a request names none *)
      let measurements =
        List.map (fun m -> Workload.Runner.run_method engine m queries) methods
      in
      List.iter
        (fun (m : Workload.Runner.measurement) ->
          Alcotest.(check int)
            "reference workload untruncated" 0 m.Workload.Runner.n_truncated)
        measurements;
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          List.iter
            (fun method_ ->
              List.iter
                (fun q ->
                  let r =
                    ok_query ~method_ ~count_only:true client (Qlang.render g q)
                  in
                  Alcotest.(check string)
                    "workload query" "ok" r.Protocol.status)
                queries)
            methods;
          let snapshot =
            match Client.metrics client with
            | Ok s -> s
            | Error msg -> Alcotest.failf "metrics: %s" msg
          in
          let sum f = List.fold_left (fun acc m -> acc + f m) 0 measurements in
          let n = List.length queries in
          Alcotest.(check int)
            "completed" (n * List.length methods)
            (metrics_int snapshot [ "requests"; "completed" ]);
          Alcotest.(check int)
            "total results"
            (sum (fun m -> m.Workload.Runner.total_results))
            (metrics_int snapshot [ "totals"; "results" ]);
          Alcotest.(check int)
            "total intermediate"
            (sum (fun m -> m.Workload.Runner.total_intermediate))
            (metrics_int snapshot [ "totals"; "intermediate" ]);
          Alcotest.(check int)
            "total scanned"
            (sum (fun m -> m.Workload.Runner.total_scanned))
            (metrics_int snapshot [ "totals"; "scanned" ]);
          Alcotest.(check int)
            "total seeks"
            (sum (fun m -> m.Workload.Runner.total_seeks))
            (metrics_int snapshot [ "totals"; "seeks" ]);
          List.iter
            (fun method_ ->
              Alcotest.(check int)
                (Workload.Engine.method_name method_ ^ " count")
                n
                (metrics_int snapshot
                   [ "methods"; Workload.Engine.method_name method_; "count" ]))
            methods;
          (* the Prometheus exposition reports the same golden totals *)
          let prom =
            match Client.metrics_prom client with
            | Ok text -> text
            | Error msg -> Alcotest.failf "metrics_prom: %s" msg
          in
          let has_line line =
            List.mem line (String.split_on_char '\n' prom)
          in
          let check_line line =
            Alcotest.(check bool) line true (has_line line)
          in
          check_line
            (Printf.sprintf "tcsq_requests_total{outcome=\"completed\"} %d"
               (n * List.length methods));
          check_line
            (Printf.sprintf "tcsq_run_stats_total{counter=\"seeks\"} %d"
               (sum (fun m -> m.Workload.Runner.total_seeks)));
          check_line
            (Printf.sprintf "tcsq_run_stats_total{counter=\"scanned\"} %d"
               (sum (fun m -> m.Workload.Runner.total_scanned)));
          List.iter
            (fun method_ ->
              check_line
                (Printf.sprintf
                   "tcsq_request_duration_seconds_count{method=\"%s\"} %d"
                   (Workload.Engine.method_name method_)
                   n))
            methods))

(* ---- admission control ---- *)

let test_admission_shedding () =
  let g = dense_graph () in
  with_server ~workers:1 ~queue_depth:1 ~default_deadline_ms:300.0 g
    (fun _srv _engine path ->
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let n = 6 in
          (* pipeline: all requests written before any response is read,
             so the single worker is still busy when the later ones
             arrive *)
          for i = 1 to n do
            Client.send_raw client
              (Json.to_string
                 (Client.query_json ~id:(string_of_int i) ~count_only:true
                    ~max_results:max_int ~max_intermediate:max_int
                    non_selective))
          done;
          let statuses = Hashtbl.create 8 in
          let ids = ref [] in
          for _ = 1 to n do
            match Client.recv client with
            | Error msg -> Alcotest.failf "response: %s" msg
            | Ok r ->
                (match r.Protocol.id with
                | Some id -> ids := id :: !ids
                | None -> Alcotest.fail "response lost its id");
                Hashtbl.replace statuses r.Protocol.status
                  (1
                  + Option.value
                      (Hashtbl.find_opt statuses r.Protocol.status)
                      ~default:0)
          done;
          let count s =
            Option.value (Hashtbl.find_opt statuses s) ~default:0
          in
          Alcotest.(check (list string))
            "every request answered exactly once"
            (List.init n (fun i -> string_of_int (i + 1)))
            (List.sort compare !ids);
          if count "overloaded" < 3 then
            Alcotest.failf
              "expected >= 3 shed requests, got %d (ok %d, truncated %d)"
              (count "overloaded") (count "ok") (count "truncated");
          if count "ok" + count "truncated" < 1 then
            Alcotest.fail "expected at least one executed request";
          assert_healthy client path))

(* ---- protocol error paths ---- *)

let test_error_paths () =
  let g =
    Test_util.random_graph ~seed:11 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  with_server g (fun _srv _engine path ->
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* malformed JSON *)
          Client.send_raw client "{nope";
          (match Client.recv client with
          | Error msg -> Alcotest.failf "parse-error response: %s" msg
          | Ok r ->
              Alcotest.(check string) "parse status" "error" r.Protocol.status;
              Alcotest.(check (option string))
                "parse kind" (Some "parse") r.Protocol.kind);
          (* unknown op *)
          Client.send_raw client "{\"op\": \"dance\"}";
          (match Client.recv client with
          | Error msg -> Alcotest.failf "unknown-op response: %s" msg
          | Ok r ->
              Alcotest.(check string) "op status" "error" r.Protocol.status);
          (* unknown label: rejected at compile time, never executed *)
          let r = ok_query client "MATCH (x)-[nosuchlabel]->(y) IN [0, 40]" in
          Alcotest.(check string) "label status" "error" r.Protocol.status;
          Alcotest.(check (option string))
            "label kind" (Some "query") r.Protocol.kind;
          (* provably-empty window: answered "ok, zero" without running *)
          let r =
            ok_query client "MATCH (x)-[l0]->(y) IN [100000, 200000]"
          in
          Alcotest.(check string) "empty status" "ok" r.Protocol.status;
          Alcotest.(check (option int)) "empty count" (Some 0) r.Protocol.count;
          (* still alive *)
          Alcotest.(check bool) "ping" true (Client.ping client);
          (* the failures above are all visible in the snapshot *)
          let snapshot =
            match Client.metrics client with
            | Ok s -> s
            | Error msg -> Alcotest.failf "metrics: %s" msg
          in
          Alcotest.(check int)
            "parse errors counted" 2
            (metrics_int snapshot [ "requests"; "parse_errors" ]);
          Alcotest.(check int)
            "rejections counted" 1
            (metrics_int snapshot [ "requests"; "rejected" ])))

(* ---- result limit ---- *)

let test_match_limit () =
  let g =
    Test_util.random_graph ~seed:11 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  with_server g (fun _srv engine path ->
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let text = "MATCH (x)-[*]->(y) IN [0, 40]" in
          let q =
            match Qlang.parse_and_compile g text with
            | Ok q -> q
            | Error msg -> Alcotest.failf "compile: %s" msg
          in
          let total =
            List.length (Workload.Engine.evaluate engine Workload.Engine.Tsrjoin q)
          in
          Alcotest.(check bool) "graph busy enough" true (total > 3);
          let r = ok_query ~limit:3 client text in
          Alcotest.(check string) "status" "ok" r.Protocol.status;
          Alcotest.(check (option int))
            "count reports the full cardinality" (Some total) r.Protocol.count;
          Alcotest.(check int)
            "matches capped at the limit" 3
            (List.length r.Protocol.matches)))

(* ---- Prometheus exposition-format conformance ----

   Validates the text exposition against the 0.0.4 grammar without a
   regex engine: metric names, label syntax, numeric values, a # TYPE
   comment for every family, and — for each histogram series — the
   mandatory +Inf bucket, monotone cumulative buckets, and matching
   _sum/_count lines. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* "name{labels} value" -> (family, labels-without-le, le option, value);
   labels arrive as the raw sorted k="v" list so series compare equal *)
let parse_sample line =
  let name_end =
    let rec go i =
      if i < String.length line && is_name_char line.[i] then go (i + 1)
      else i
    in
    go 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "sample %S has a metric name" line)
    true (name_end > 0);
  let name = String.sub line 0 name_end in
  let rest = String.sub line name_end (String.length line - name_end) in
  let labels, value_str =
    if String.length rest > 0 && rest.[0] = '{' then begin
      match String.index_opt rest '}' with
      | None -> Alcotest.failf "sample %S: unterminated label set" line
      | Some close ->
          ( String.sub rest 1 (close - 1),
            String.trim
              (String.sub rest (close + 1) (String.length rest - close - 1))
          )
    end
    else ("", String.trim rest)
  in
  (match float_of_string_opt value_str with
  | Some _ -> ()
  | None -> Alcotest.failf "sample %S: value %S not numeric" line value_str);
  let label_list =
    if labels = "" then []
    else
      String.split_on_char ',' labels
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | None -> Alcotest.failf "sample %S: label %S has no =" line kv
             | Some eq ->
                 let k = String.sub kv 0 eq in
                 let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                 Alcotest.(check bool)
                   (Printf.sprintf "sample %S: label value %S quoted" line v)
                   true
                   (String.length v >= 2
                   && v.[0] = '"'
                   && v.[String.length v - 1] = '"');
                 (k, String.sub v 1 (String.length v - 2)))
  in
  let le = List.assoc_opt "le" label_list in
  let others =
    List.filter (fun (k, _) -> k <> "le") label_list
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (name, others, le, float_of_string value_str)

let test_prometheus_exposition () =
  let m = Metrics.create () in
  let stats = Run_stats.create () in
  Run_stats.tick_level_intermediate stats 0;
  Run_stats.tick_level_intermediate stats 1;
  Run_stats.add_est_level_intermediate stats 0 3;
  Metrics.record_query m ~slow:true ~fingerprint:"deadbeef01234567"
    ~misestimation:17.0 ~method_:Workload.Engine.Tsrjoin
    ~outcome:Metrics.Completed ~stats ~seconds:0.25;
  Metrics.record_query m ~method_:Workload.Engine.Binary
    ~outcome:Metrics.Truncated_budget
    ~stats:(Run_stats.create ()) ~seconds:0.001;
  Metrics.record_parse_error m;
  let text = Metrics.prometheus m ~queue_depth:2 ~pool_dropped:0 in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  (* every family referenced by a sample has a preceding # TYPE *)
  let typed = Hashtbl.create 16 in
  let samples =
    List.filter_map
      (fun line ->
        if String.length line > 0 && line.[0] = '#' then begin
          (match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: family :: [ kind ] ->
              Hashtbl.replace typed family kind
          | _ -> ());
          None
        end
        else Some (parse_sample line))
      lines
  in
  let family_of name =
    List.fold_left
      (fun acc suffix ->
        match acc with
        | Some _ -> acc
        | None ->
            if
              String.length name > String.length suffix
              && String.sub name
                   (String.length name - String.length suffix)
                   (String.length suffix)
                 = suffix
              && Hashtbl.mem typed
                   (String.sub name 0 (String.length name - String.length suffix))
            then
              Some (String.sub name 0 (String.length name - String.length suffix))
            else None)
      None
      [ "_bucket"; "_sum"; "_count" ]
    |> Option.value ~default:name
  in
  List.iter
    (fun (name, _, _, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "family of %s has a # TYPE comment" name)
        true
        (Hashtbl.mem typed (family_of name)))
    samples;
  (* histogram series: +Inf present, buckets monotone, _count matches *)
  let histograms =
    Hashtbl.fold
      (fun family kind acc -> if kind = "histogram" then family :: acc else acc)
      typed []
  in
  Alcotest.(check bool)
    "misestimation histogram family present" true
    (List.mem "tcsq_misestimation_ratio" histograms);
  List.iter
    (fun family ->
      let series =
        List.filter_map
          (fun (name, others, le, v) ->
            if name = family ^ "_bucket" then Some (others, le, v) else None)
          samples
      in
      let keys =
        List.sort_uniq compare (List.map (fun (o, _, _) -> o) series)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s has at least one series" family)
        true (keys <> []);
      List.iter
        (fun key ->
          let buckets =
            List.filter (fun (o, _, _) -> o = key) series
            |> List.map (fun (_, le, v) -> (le, v))
          in
          let inf =
            List.filter (fun (le, _) -> le = Some "+Inf") buckets
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: exactly one +Inf bucket" family)
            1 (List.length inf);
          (* exposition order is the ladder order: cumulative counts
             must be nondecreasing and end at the +Inf bucket *)
          ignore
            (List.fold_left
               (fun prev (_, v) ->
                 Alcotest.(check bool)
                   (Printf.sprintf "%s: cumulative buckets monotone" family)
                   true (v >= prev);
                 v)
               0.0 buckets);
          let count =
            List.filter_map
              (fun (name, others, _, v) ->
                if name = family ^ "_count" && others = key then Some v
                else None)
              samples
          in
          let sum =
            List.filter_map
              (fun (name, others, _, v) ->
                if name = family ^ "_sum" && others = key then Some v
                else None)
              samples
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: one _count line" family)
            1 (List.length count);
          Alcotest.(check int)
            (Printf.sprintf "%s: one _sum line" family)
            1 (List.length sum);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s: +Inf bucket equals _count" family)
            (List.hd count)
            (snd (List.hd inf)))
        keys)
    histograms;
  (* the new counters landed with the values just recorded *)
  let sample_value name key =
    List.filter_map
      (fun (n, others, _, v) -> if n = name && others = key then Some v else None)
      samples
  in
  Alcotest.(check (list (float 0.0)))
    "slow completed counter" [ 1.0 ]
    (sample_value "tcsq_slow_requests_total" [ ("outcome", "completed") ]);
  Alcotest.(check (list (float 0.0)))
    "slow truncated_budget counter stays 0" [ 0.0 ]
    (sample_value "tcsq_slow_requests_total"
       [ ("outcome", "truncated_budget") ]);
  Alcotest.(check (list (float 0.0)))
    "misestimation _count is 1" [ 1.0 ]
    (sample_value "tcsq_misestimation_ratio_count" [])

let () =
  Alcotest.run "server"
    [
      ( "json",
        [ Alcotest.test_case "parse/print roundtrip" `Quick test_json_roundtrip ]
      );
      ( "deadline",
        [
          Alcotest.test_case "fake clock unit" `Quick test_deadline_fake_clock;
          Alcotest.test_case "wall-clock truncation" `Quick
            test_deadline_truncation;
          Alcotest.test_case "budget truncation" `Quick test_budget_truncation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "four methods, four domains" `Quick
            test_concurrent_differential;
          Alcotest.test_case "match limit vs count" `Quick test_match_limit;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "golden totals" `Quick test_golden_metrics;
          Alcotest.test_case "prometheus exposition conformance" `Quick
            test_prometheus_exposition;
        ] );
      ( "admission",
        [ Alcotest.test_case "shedding under load" `Quick test_admission_shedding ]
      );
      ( "protocol",
        [ Alcotest.test_case "error paths" `Quick test_error_paths ] );
    ]
