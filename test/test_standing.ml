(* Standing-query tests: the subscription registry's delta pushes are
   checked against the oracle — at every ingest-batch boundary the
   accumulated deltas (initial snapshot + added - retracted) must equal
   a fresh re-query of the current graph — plus sliding-window
   retractions, multi-subscriber fan-out through one shared
   Multi_window group, and the end-to-end wire path (subscribe frame,
   pushed delta notifications, unsubscribe, label interning on
   ingest). *)

open Semantics
open Tcsq_server

module MS = Set.Make (struct
  type t = Match_result.t

  let compare = Match_result.compare
end)

let window a b = Temporal.Interval.make a b

let random_extra rng n ~n_vertices ~n_labels ~domain =
  List.init n (fun _ ->
      let ts = Random.State.int rng domain in
      ( Random.State.int rng n_vertices,
        Random.State.int rng n_vertices,
        Random.State.int rng n_labels,
        ts,
        min (domain - 1) (ts + Random.State.int rng 8) ))

(* a recording subscriber: accumulates the standing set exactly the way
   a wire client would, with sanity checks on every delta *)
let recorder () =
  let acc = ref MS.empty in
  let deltas = ref [] in
  let push (d : Subscription.delta) =
    let added = MS.of_list d.Subscription.added in
    let retracted = MS.of_list d.Subscription.retracted in
    if not (MS.is_empty (MS.inter added !acc)) then
      Alcotest.fail "delta re-added a standing match";
    if not (MS.subset retracted !acc) then
      Alcotest.fail "delta retracted a match that was not standing";
    acc := MS.diff (MS.union !acc added) retracted;
    if MS.cardinal !acc <> d.Subscription.total then
      Alcotest.failf "delta total %d but accumulated %d"
        d.Subscription.total (MS.cardinal !acc);
    deltas := d :: !deltas
  in
  (acc, deltas, push)

let check_acc ~msg acc expected =
  let expected = MS.of_list expected in
  if not (MS.equal !acc expected) then
    Alcotest.failf "%s: accumulated %d standing matches, fresh re-query %d"
      msg (MS.cardinal !acc) (MS.cardinal expected)

(* ---- delta oracle: accumulated deltas == fresh re-query ---- *)

let test_delta_oracle () =
  let g =
    Test_util.random_graph ~seed:7 ~n_vertices:5 ~n_edges:30 ~n_labels:3
      ~domain:30 ~max_len:8 ()
  in
  let inc = Tcsq_core.Incremental.of_tai ~merge_threshold:6 g (Tcsq_core.Tai.build g) in
  let subs = Subscription.create () in
  let engine0 =
    Workload.Engine.prepare_with_tai g (Tcsq_core.Incremental.tai inc)
  in
  let parse text =
    match Qlang.parse_and_compile_ext g text with
    | Ok eq -> eq
    | Error msg -> Alcotest.failf "parse %S: %s" text msg
  in
  let plain = parse "MATCH (x)-[l0]->(y)-[l1]->(z) IN [0, 29]" in
  let decorated = parse "MATCH (x)-[l0]->(y) NOT (y)-[l2]->(x) IN [0, 29]" in
  let acc_p, _, push_p = recorder () in
  let acc_d, _, push_d = recorder () in
  let _, _, init_p = Subscription.subscribe subs ~engine:engine0 ~push:push_p plain in
  let _, _, init_d =
    Subscription.subscribe subs ~engine:engine0 ~push:push_d decorated
  in
  acc_p := MS.of_list init_p;
  acc_d := MS.of_list init_d;
  check_acc ~msg:"plain snapshot" acc_p (Naive.evaluate_ext g plain);
  check_acc ~msg:"decorated snapshot" acc_d (Naive.evaluate_ext g decorated);
  let rng = Random.State.make [| 8 |] in
  for batch = 1 to 5 do
    List.iter
      (fun (src, dst, lbl, ts, te) ->
        ignore (Tcsq_core.Incremental.add_edge inc ~src ~dst ~lbl ~ts ~te))
      (random_extra rng
         (1 + Random.State.int rng 6)
         ~n_vertices:5 ~n_labels:3 ~domain:30);
    let gb = Tcsq_core.Incremental.graph inc in
    let engine =
      Workload.Engine.prepare_with_tai gb (Tcsq_core.Incremental.tai inc)
    in
    Subscription.on_ingest subs ~engine ~generation:batch;
    check_acc
      ~msg:(Printf.sprintf "plain, batch %d" batch)
      acc_p
      (Naive.evaluate_ext gb plain);
    check_acc
      ~msg:(Printf.sprintf "decorated, batch %d" batch)
      acc_d
      (Naive.evaluate_ext gb decorated)
  done

(* ---- sliding windows retract matches the window leaves behind ---- *)

let test_sliding_retraction () =
  let g =
    Tgraph.Graph.of_edge_list
      [ (0, 1, 0, 0, 2); (1, 2, 0, 1, 3); (2, 3, 0, 2, 4) ]
  in
  let inc = Tcsq_core.Incremental.of_tai g (Tcsq_core.Tai.build g) in
  let subs = Subscription.create () in
  let engine0 =
    Workload.Engine.prepare_with_tai g (Tcsq_core.Incremental.tai inc)
  in
  let eq =
    match Qlang.parse_and_compile_ext g "MATCH (x)-[l0]->(y) IN [0, 100]" with
    | Ok eq -> eq
    | Error msg -> Alcotest.fail msg
  in
  let acc, deltas, push = recorder () in
  let sub, w0, initial =
    Subscription.subscribe subs ~engine:engine0 ~window_width:5 ~push eq
  in
  acc := MS.of_list initial;
  (* stream head is 4, so the sliding window starts at [0, 4] *)
  Alcotest.(check (pair int int))
    "initial sliding window" (0, 4)
    (Temporal.Interval.ts w0, Temporal.Interval.te w0);
  Alcotest.(check int) "all three edges match initially" 3
    (List.length initial);
  (* push the stream head to 20: the window becomes [16, 20], every old
     match must be retracted and only the new edge stands *)
  ignore (Tcsq_core.Incremental.add_edge inc ~src:3 ~dst:4 ~lbl:0 ~ts:17 ~te:20);
  let gb = Tcsq_core.Incremental.graph inc in
  let engine =
    Workload.Engine.prepare_with_tai gb (Tcsq_core.Incremental.tai inc)
  in
  Subscription.on_ingest subs ~engine ~generation:1;
  (match !deltas with
  | [ d ] ->
      Alcotest.(check int) "sub id" sub d.Subscription.sub;
      Alcotest.(check (pair int int))
        "advanced window" (16, 20)
        ( Temporal.Interval.ts d.Subscription.window,
          Temporal.Interval.te d.Subscription.window );
      Alcotest.(check int) "three retractions" 3
        (List.length d.Subscription.retracted);
      Alcotest.(check int) "one addition" 1
        (List.length d.Subscription.added)
  | ds -> Alcotest.failf "expected exactly one delta, got %d" (List.length ds));
  check_acc ~msg:"post-advance standing set" acc
    (Naive.evaluate_ext gb (Equery.with_window eq (window 16 20)))

(* ---- two subscribers on one shape share a group and agree ---- *)

let test_fanout () =
  let g =
    Test_util.random_graph ~seed:9 ~n_vertices:4 ~n_edges:20 ~n_labels:2
      ~domain:20 ~max_len:6 ()
  in
  let inc = Tcsq_core.Incremental.of_tai g (Tcsq_core.Tai.build g) in
  let subs = Subscription.create () in
  let engine0 =
    Workload.Engine.prepare_with_tai g (Tcsq_core.Incremental.tai inc)
  in
  let eq =
    match Qlang.parse_and_compile_ext g "MATCH (x)-[l0]->(y) IN [0, 19]" with
    | Ok eq -> eq
    | Error msg -> Alcotest.fail msg
  in
  let acc1, d1, push1 = recorder () in
  let acc2, d2, push2 = recorder () in
  (* same plain core, different windows: one fixed, one sliding — they
     land in the same Multi_window group keyed by the core pattern *)
  let _, _, i1 = Subscription.subscribe subs ~engine:engine0 ~push:push1 eq in
  let _, _, i2 =
    Subscription.subscribe subs ~engine:engine0 ~window_width:8 ~push:push2 eq
  in
  acc1 := MS.of_list i1;
  acc2 := MS.of_list i2;
  Alcotest.(check int) "both registered" 2 (Subscription.active subs);
  let rng = Random.State.make [| 10 |] in
  for batch = 1 to 3 do
    List.iter
      (fun (src, dst, lbl, ts, te) ->
        ignore (Tcsq_core.Incremental.add_edge inc ~src ~dst ~lbl ~ts ~te))
      (random_extra rng 4 ~n_vertices:4 ~n_labels:2 ~domain:20);
    let gb = Tcsq_core.Incremental.graph inc in
    let engine =
      Workload.Engine.prepare_with_tai gb (Tcsq_core.Incremental.tai inc)
    in
    Subscription.on_ingest subs ~engine ~generation:batch;
    let hi = Temporal.Interval.te (Tgraph.Graph.time_domain gb) in
    check_acc
      ~msg:(Printf.sprintf "fixed-window sub, batch %d" batch)
      acc1
      (Naive.evaluate_ext gb eq);
    check_acc
      ~msg:(Printf.sprintf "sliding sub, batch %d" batch)
      acc2
      (Naive.evaluate_ext gb (Equery.with_window eq (window (hi - 7) hi)))
  done;
  Alcotest.(check int) "one delta per batch, sub 1" 3 (List.length !d1);
  Alcotest.(check int) "one delta per batch, sub 2" 3 (List.length !d2);
  (* unsubscribe the first: later batches only reach the second *)
  let removed = Subscription.unsubscribe subs 0 in
  Alcotest.(check bool) "unsubscribed" true removed;
  Alcotest.(check int) "one left" 1 (Subscription.active subs);
  ignore (Tcsq_core.Incremental.add_edge inc ~src:0 ~dst:1 ~lbl:0 ~ts:2 ~te:5);
  let gb = Tcsq_core.Incremental.graph inc in
  let engine =
    Workload.Engine.prepare_with_tai gb (Tcsq_core.Incremental.tai inc)
  in
  Subscription.on_ingest subs ~engine ~generation:4;
  Alcotest.(check int) "no further deltas after unsubscribe" 3
    (List.length !d1);
  Alcotest.(check int) "survivor keeps receiving" 4 (List.length !d2)

(* ---- end-to-end over the wire ---- *)

let fresh_socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tcsq-standing-%d-%d.sock" (Unix.getpid ()) !n)

let with_server g f =
  let engine = Workload.Engine.prepare g in
  let socket_path = fresh_socket_path () in
  let config =
    { (Server.default_config ~socket_path) with Server.workers = 2 }
  in
  let srv = Server.start config engine in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f socket_path)

let ingest_line edges =
  let edge (src, dst, label, ts, te) =
    Printf.sprintf
      {|{"src": %d, "dst": %d, "label": "%s", "ts": %d, "te": %d}|} src dst
      label ts te
  in
  Printf.sprintf {|{"op": "ingest", "edges": [%s]}|}
    (String.concat ", " (List.map edge edges))

let ok_raw client line =
  match Client.request_raw client line with
  | Error msg -> Alcotest.failf "transport error: %s" msg
  | Ok r ->
      if r.Protocol.status <> "ok" then
        Alcotest.failf "expected ok, got %s (%s)" r.Protocol.status
          (Option.value r.Protocol.message ~default:"");
      r

let test_wire_subscribe_ingest () =
  let g =
    Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5); (1, 2, 1, 2, 8) ]
  in
  with_server g (fun path ->
      let watcher = Client.connect path in
      let feeder = Client.connect path in
      Fun.protect
        ~finally:(fun () ->
          Client.close watcher;
          Client.close feeder)
        (fun () ->
          let sub, r =
            match
              Client.subscribe ~id:"w" watcher "MATCH (x)-[l0]->(y) IN [0, 50]"
            with
            | Ok (sub, r) -> (sub, r)
            | Error msg -> Alcotest.failf "subscribe: %s" msg
          in
          Alcotest.(check int) "snapshot count" 1
            (Option.value ~default:(-1) (Json.mem_int "count" r.Protocol.json));
          (* the ingest ack is written after the deltas, so once the
             feeder sees its ack the watcher's delta is on the wire *)
          let ack =
            ok_raw feeder
              (ingest_line [ (2, 3, "l0", 3, 9); (3, 0, "l1", 4, 10) ])
          in
          Alcotest.(check (option int))
            "appended" (Some 2)
            (Json.mem_int "appended" ack.Protocol.json);
          (match Client.next_frame watcher with
          | Ok (`Delta (d, _)) ->
              Alcotest.(check int) "delta for our sub" sub
                d.Protocol.delta_sub;
              Alcotest.(check (option string))
                "tag" (Some "w") d.Protocol.delta_tag;
              Alcotest.(check int) "one new match" 1
                (List.length d.Protocol.delta_added);
              Alcotest.(check int) "nothing retracted" 0
                (List.length d.Protocol.delta_retracted);
              Alcotest.(check (option int))
                "total" (Some 2) d.Protocol.delta_total
          | Ok (`Response _) -> Alcotest.fail "expected a delta notification"
          | Error msg -> Alcotest.failf "watcher read: %s" msg);
          (* unsubscribe, ingest again: the next frame on the watcher
             must be its own ping response, not a delta *)
          (match Client.unsubscribe watcher sub with
          | Ok true -> ()
          | Ok false -> Alcotest.fail "unsubscribe reported not-removed"
          | Error msg -> Alcotest.failf "unsubscribe: %s" msg);
          ignore (ok_raw feeder (ingest_line [ (0, 3, "l0", 5, 11) ]));
          ignore (Client.send_raw watcher {|{"op": "ping"}|});
          match Client.recv watcher with
          | Ok r ->
              Alcotest.(check bool) "ping response, not a delta" false
                (Protocol.is_notification r)
          | Error msg -> Alcotest.failf "post-unsubscribe read: %s" msg))

(* ingest may introduce labels the label table has never seen: they are
   interned, and both the analyzer and the query path see them *)
let test_wire_label_interning () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  with_server g (fun path ->
      let client = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* unknown label before the ingest: the analyzer rejects it *)
          (match Client.query client "MATCH (x)-[fresh]->(y) IN [0, 50]" with
          | Ok r ->
              Alcotest.(check string) "unknown label rejected" "error"
                r.Protocol.status
          | Error msg -> Alcotest.failf "transport: %s" msg);
          let ack = ok_raw client (ingest_line [ (1, 2, "fresh", 3, 9) ]) in
          Alcotest.(check (option int))
            "appended with a new label" (Some 1)
            (Json.mem_int "appended" ack.Protocol.json);
          let r = ok_raw client "{\"op\": \"query\", \"query\": \"MATCH (x)-[fresh]->(y) IN [0, 50]\", \"method\": \"tsrjoin\"}" in
          Alcotest.(check (option int))
            "the interned label now matches" (Some 1)
            (Json.mem_int "count" r.Protocol.json)))

let () =
  Alcotest.run "standing"
    [
      ( "deltas",
        [
          Alcotest.test_case "accumulated deltas = fresh re-query" `Quick
            test_delta_oracle;
          Alcotest.test_case "sliding windows retract" `Quick
            test_sliding_retraction;
          Alcotest.test_case "fan-out and unsubscribe" `Quick test_fanout;
        ] );
      ( "wire",
        [
          Alcotest.test_case "subscribe / ingest / delta / unsubscribe"
            `Quick test_wire_subscribe_ingest;
          Alcotest.test_case "labels intern on ingest" `Quick
            test_wire_label_interning;
        ] );
    ]
