(* Unit and property tests for the temporal substrate: Interval,
   Span_item, Vec, Min_heap, Active_list, Relation, Coverage. *)

open Temporal

let interval = Alcotest.testable Interval.pp Interval.equal

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ---------- Interval ---------- *)

let test_interval_make () =
  let i = Interval.make 3 7 in
  Alcotest.(check int) "ts" 3 (Interval.ts i);
  Alcotest.(check int) "te" 7 (Interval.te i);
  Alcotest.(check int) "length" 5 (Interval.length i);
  check_invalid "te < ts rejected" (fun () -> ignore (Interval.make 5 4));
  Alcotest.(check (option interval))
    "make_opt empty" None (Interval.make_opt 5 4);
  Alcotest.(check (option interval))
    "make_opt ok"
    (Some (Interval.make 4 5))
    (Interval.make_opt 4 5)

let test_interval_point () =
  let p = Interval.point 9 in
  Alcotest.(check int) "length 1" 1 (Interval.length p);
  Alcotest.(check bool) "contains" true (Interval.contains p 9);
  Alcotest.(check bool) "not contains" false (Interval.contains p 8)

let test_interval_overlap () =
  let a = Interval.make 1 5 and b = Interval.make 5 9 and c = Interval.make 6 9 in
  Alcotest.(check bool) "closed endpoints touch" true (Interval.overlaps a b);
  Alcotest.(check bool) "disjoint" false (Interval.overlaps a c);
  Alcotest.(check bool) "window" true (Interval.overlaps_window a ~ws:5 ~we:100);
  Alcotest.(check bool) "window miss" false (Interval.overlaps_window a ~ws:6 ~we:100)

let test_interval_intersect () =
  let a = Interval.make 1 5 and b = Interval.make 3 9 in
  Alcotest.(check (option interval))
    "intersect" (Some (Interval.make 3 5)) (Interval.intersect a b);
  Alcotest.(check (option interval))
    "disjoint" None
    (Interval.intersect a (Interval.make 6 7));
  Alcotest.check interval "intersect_exn" (Interval.make 3 5)
    (Interval.intersect_exn a b);
  check_invalid "intersect_exn disjoint" (fun () ->
      ignore (Interval.intersect_exn a (Interval.make 6 7)))

let test_interval_span_before () =
  let a = Interval.make 1 3 and b = Interval.make 7 9 in
  Alcotest.check interval "span" (Interval.make 1 9) (Interval.span a b);
  Alcotest.(check bool) "before" true (Interval.before a b);
  Alcotest.(check bool) "not before" false (Interval.before b a);
  Alcotest.(check bool) "touching not before"
    false
    (Interval.before (Interval.make 1 7) b)

let test_interval_compare () =
  let sorted =
    List.sort Interval.compare
      [ Interval.make 3 4; Interval.make 1 9; Interval.make 1 2 ]
  in
  Alcotest.(check (list interval))
    "start then end"
    [ Interval.make 1 2; Interval.make 1 9; Interval.make 3 4 ]
    sorted;
  let by_end =
    List.sort Interval.compare_by_end
      [ Interval.make 1 9; Interval.make 3 4; Interval.make 0 4 ]
  in
  Alcotest.(check (list interval))
    "end then start"
    [ Interval.make 0 4; Interval.make 3 4; Interval.make 1 9 ]
    by_end

(* property: intersect is the largest interval contained in both *)
let prop_intersect_sound =
  QCheck.Test.make ~name:"intersect sound and commutative" ~count:500
    QCheck.(quad small_int small_nat small_int small_nat)
    (fun (a, da, b, db) ->
      let x = Interval.make a (a + da) and y = Interval.make b (b + db) in
      match (Interval.intersect x y, Interval.intersect y x) with
      | None, None -> not (Interval.overlaps x y)
      | Some i, Some j ->
          Interval.equal i j
          && Interval.ts i = max (Interval.ts x) (Interval.ts y)
          && Interval.te i = min (Interval.te x) (Interval.te y)
      | Some _, None | None, Some _ -> false)

(* ---------- Vec ---------- *)

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop_exn v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  check_invalid "oob get" (fun () -> ignore (Vec.get v 99))

let test_vec_insert_sorted () =
  let v = Vec.create () in
  List.iter (Vec.insert_sorted ~cmp:Int.compare v) [ 5; 1; 9; 3; 7; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 3; 5; 7; 9 ] (Vec.to_list v)

let test_vec_remove_prefix () =
  let v = Vec.of_list [ 1; 2; 3; 10; 2 ] in
  let n = Vec.remove_prefix (fun x -> x < 5) v in
  Alcotest.(check int) "removed" 3 n;
  Alcotest.(check (list int)) "rest" [ 10; 2 ] (Vec.to_list v)

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let n = Vec.filter_in_place (fun x -> x mod 2 = 0) v in
  Alcotest.(check int) "removed" 3 n;
  Alcotest.(check (list int)) "kept in order" [ 2; 4; 6 ] (Vec.to_list v)

let prop_vec_insert_sorted =
  QCheck.Test.make ~name:"insert_sorted keeps order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.insert_sorted ~cmp:Int.compare v) xs;
      Vec.to_list v = List.sort Int.compare xs)

(* ---------- Min_heap ---------- *)

let test_heap_order () =
  let h = Min_heap.create ~cmp:Int.compare () in
  List.iter (Min_heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Min_heap.pop h with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_drain_while () =
  let h = Min_heap.create ~cmp:Int.compare () in
  List.iter (Min_heap.push h) [ 4; 1; 6; 2 ];
  Min_heap.drain_while h (fun x -> x < 4);
  Alcotest.(check (option int)) "min left" (Some 4) (Min_heap.peek h);
  Alcotest.(check int) "length" 2 (Min_heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Min_heap.create ~cmp:Int.compare () in
      List.iter (Min_heap.push h) xs;
      let rec drain acc =
        match Min_heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort Int.compare xs)

(* ---------- Span_item / Relation ---------- *)

let items_of l = Array.of_list (List.map (fun (id, a, b) -> Span_item.make id (Interval.make a b)) l)

let test_relation_sorting () =
  let r = Relation.of_items (items_of [ (1, 5, 9); (2, 1, 3); (3, 1, 2) ]) in
  Alcotest.(check (list int))
    "sorted ids" [ 3; 2; 1 ]
    (List.map Span_item.id (Array.to_list (Relation.items r)))

let test_relation_bounds () =
  let r = Relation.of_items (items_of [ (0, 1, 4); (1, 3, 5); (2, 3, 9); (3, 7, 8) ]) in
  Alcotest.(check int) "lower 3" 1 (Relation.lower_bound_start r 3);
  Alcotest.(check int) "upper 3" 3 (Relation.upper_bound_start r 3);
  Alcotest.(check int) "lower past end" 4 (Relation.lower_bound_start r 100);
  Alcotest.(check int) "lower before" 0 (Relation.lower_bound_start r (-5))

let test_relation_window_count () =
  let r = Relation.of_items (items_of [ (0, 1, 2); (1, 3, 5); (2, 8, 9) ]) in
  Alcotest.(check int) "count" 1 (Relation.count_window r ~ws:4 ~we:7);
  Alcotest.(check int) "all" 3 (Relation.count_window r ~ws:0 ~we:100)

let test_relation_of_sorted_rejects () =
  check_invalid "unsorted rejected" (fun () ->
      ignore (Relation.of_sorted (items_of [ (0, 5, 6); (1, 1, 2) ])))

(* ---------- Active_list ---------- *)

let test_active_list () =
  let a = Active_list.create () in
  List.iter
    (fun (id, s, e) -> Active_list.insert a (Span_item.make id (Interval.make s e)))
    [ (0, 1, 9); (1, 2, 3); (2, 0, 5) ];
  Alcotest.(check (option int)) "min end" (Some 3) (Active_list.min_end a);
  let removed = Active_list.expire a 5 in
  Alcotest.(check int) "expired one" 1 removed;
  Alcotest.(check (list int))
    "end order" [ 2; 0 ]
    (List.map Span_item.id (Active_list.to_list a))

(* ---------- Coverage ---------- *)

(* brute-force earliest concurrent *)
let brute_ec items t =
  Array.to_list items
  |> List.filter (fun it -> Interval.contains (Span_item.ivl it) t)
  |> List.map Span_item.ts
  |> function
  | [] -> None
  | l -> Some (List.fold_left min max_int l)

let test_coverage_simple () =
  (* Fig. 6 flavour: one interval [0,5], so eC(t) = 0 on [0,5]. *)
  let items = items_of [ (0, 0, 5) ] in
  let c = Coverage.build items in
  Alcotest.(check int) "one tuple" 1 (Coverage.n_tuples c);
  let tup = Option.get (Coverage.get_coverage_tuple c 1) in
  Alcotest.(check int) "cs" 0 tup.Coverage.cs;
  Alcotest.(check int) "ce" 5 tup.Coverage.ce;
  Alcotest.(check int) "ec" 0 tup.Coverage.ec;
  Alcotest.(check (option int)) "eC(1)" (Some 0) (Coverage.earliest_concurrent c 1);
  Alcotest.(check (option int)) "gap" None (Coverage.earliest_concurrent c 6)

let test_coverage_chain () =
  (* [0,5], [3,8], [10,12]: eC = 0 on [0,5], 3 on [6,8], gap 9, 10 on
     [10,12]. *)
  let items = items_of [ (0, 0, 5); (1, 3, 8); (2, 10, 12) ] in
  let c = Coverage.build items in
  Alcotest.(check (option int)) "t=4" (Some 0) (Coverage.earliest_concurrent c 4);
  Alcotest.(check (option int)) "t=6" (Some 3) (Coverage.earliest_concurrent c 6);
  Alcotest.(check (option int)) "t=9" None (Coverage.earliest_concurrent c 9);
  Alcotest.(check (option int)) "t=10" (Some 10) (Coverage.earliest_concurrent c 10);
  (* getCoverageTuple falls forward to the next tuple on gaps *)
  let tup = Option.get (Coverage.get_coverage_tuple c 9) in
  Alcotest.(check int) "gap falls forward" 10 tup.Coverage.cs;
  Alcotest.(check (option Alcotest.reject)) "past the end"
    None
    (Coverage.get_coverage_tuple c 13)

let test_coverage_merges_runs () =
  (* Two intervals starting together: single earliest concurrent run. *)
  let items = items_of [ (0, 2, 4); (1, 2, 6) ] in
  let c = Coverage.build items in
  Alcotest.(check int) "merged" 1 (Coverage.n_tuples c)

let gen_items =
  QCheck.Gen.(
    list_size (int_range 0 25)
      (pair (int_range 0 40) (int_range 0 8) >|= fun (s, d) -> (s, s + d)))

let arb_items =
  QCheck.make gen_items ~print:(fun l ->
      String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "[%d,%d]" a b) l))

let prop_coverage_matches_brute =
  QCheck.Test.make ~name:"coverage = brute-force earliest concurrent"
    ~count:300 arb_items (fun spans ->
      let items =
        Array.of_list (List.mapi (fun i (a, b) -> Span_item.make i (Interval.make a b)) spans)
      in
      Span_item.sort_by_start items;
      let c = Coverage.build items in
      let ok = ref true in
      for t = -2 to 55 do
        if Coverage.earliest_concurrent c t <> brute_ec items t then ok := false
      done;
      !ok)

let prop_coverage_tuples_sorted_disjoint =
  QCheck.Test.make ~name:"coverage tuples sorted, disjoint, ec <= cs"
    ~count:300 arb_items (fun spans ->
      let items =
        Array.of_list (List.mapi (fun i (a, b) -> Span_item.make i (Interval.make a b)) spans)
      in
      Span_item.sort_by_start items;
      let tuples = Coverage.tuples (Coverage.build items) in
      let ok = ref true in
      Array.iteri
        (fun i { Coverage.cs; ce; ec } ->
          if not (cs <= ce && ec <= cs) then ok := false;
          if i > 0 && tuples.(i - 1).Coverage.ce >= cs then ok := false)
        tuples;
      !ok)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "temporal"
    [
      ( "interval",
        [
          Alcotest.test_case "make / length" `Quick test_interval_make;
          Alcotest.test_case "point" `Quick test_interval_point;
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "intersect" `Quick test_interval_intersect;
          Alcotest.test_case "span / before" `Quick test_interval_span_before;
          Alcotest.test_case "compare orders" `Quick test_interval_compare;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push / get / pop" `Quick test_vec_basics;
          Alcotest.test_case "insert_sorted" `Quick test_vec_insert_sorted;
          Alcotest.test_case "remove_prefix" `Quick test_vec_remove_prefix;
          Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
        ] );
      ( "min_heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_order;
          Alcotest.test_case "drain_while" `Quick test_heap_drain_while;
        ] );
      ( "relation",
        [
          Alcotest.test_case "of_items sorts" `Quick test_relation_sorting;
          Alcotest.test_case "binary search bounds" `Quick test_relation_bounds;
          Alcotest.test_case "count_window" `Quick test_relation_window_count;
          Alcotest.test_case "of_sorted validates" `Quick test_relation_of_sorted_rejects;
        ] );
      ("active_list", [ Alcotest.test_case "insert / expire" `Quick test_active_list ]);
      ( "coverage",
        [
          Alcotest.test_case "single interval" `Quick test_coverage_simple;
          Alcotest.test_case "chained intervals and gap" `Quick test_coverage_chain;
          Alcotest.test_case "equal-ec runs merged" `Quick test_coverage_merges_runs;
        ] );
      qsuite "interval-properties" [ prop_intersect_sound ];
      qsuite "vec-properties" [ prop_vec_insert_sorted ];
      qsuite "heap-properties" [ prop_heap_sorts ];
      qsuite "coverage-properties"
        [ prop_coverage_matches_brute; prop_coverage_tuples_sorted_disjoint ];
    ]
