(* Tests for the extended temporal substrate: Allen's interval algebra
   and the LEBI / bgFS interval-join variants. *)

open Temporal

let interval a b = Interval.make a b

(* ---------- Allen relations ---------- *)

let test_allen_examples () =
  let check name expected a b =
    Alcotest.(check string)
      name
      (Allen.to_string expected)
      (Allen.to_string (Allen.classify a b))
  in
  check "before" Allen.Before (interval 1 3) (interval 5 9);
  check "meets (adjacent ticks)" Allen.Meets (interval 1 3) (interval 4 9);
  check "overlaps" Allen.Overlaps (interval 1 5) (interval 3 9);
  check "starts" Allen.Starts (interval 1 3) (interval 1 9);
  check "during" Allen.During (interval 3 5) (interval 1 9);
  check "finishes" Allen.Finishes (interval 5 9) (interval 1 9);
  check "equal" Allen.Equal (interval 2 4) (interval 2 4);
  check "contains" Allen.Contains (interval 1 9) (interval 3 5);
  check "after" Allen.After (interval 8 9) (interval 1 3);
  check "met-by" Allen.Met_by (interval 4 9) (interval 1 3);
  (* shared single tick is an overlap for closed integer intervals *)
  check "shared endpoint overlaps" Allen.Overlaps (interval 1 3) (interval 3 9)

let arb_interval_pair =
  QCheck.make
    QCheck.Gen.(
      quad (int_range 0 20) (int_range 0 8) (int_range 0 20) (int_range 0 8))
    ~print:(fun (a, da, b, db) ->
      Printf.sprintf "[%d,%d] vs [%d,%d]" a (a + da) b (b + db))

let prop_allen_unique =
  QCheck.Test.make ~name:"exactly one Allen relation holds" ~count:500
    arb_interval_pair (fun (a, da, b, db) ->
      let x = interval a (a + da) and y = interval b (b + db) in
      let rel = Allen.classify x y in
      (* the classification is a function, so uniqueness means: the
         inverse classification matches, and the overlap predicate agrees
         with Interval.overlaps *)
      Allen.classify y x = Allen.inverse rel
      && Allen.overlaps_in_time rel = Interval.overlaps x y)

let prop_allen_inverse_involution =
  QCheck.Test.make ~name:"inverse is an involution" ~count:1
    QCheck.unit (fun () ->
      Array.for_all (fun r -> Allen.inverse (Allen.inverse r) = r) Allen.all)

let test_allen_all_reachable () =
  (* every one of the 13 relations is produced by some pair *)
  let seen = Hashtbl.create 13 in
  for a = 0 to 6 do
    for da = 0 to 4 do
      for b = 0 to 6 do
        for db = 0 to 4 do
          Hashtbl.replace seen
            (Allen.classify (interval a (a + da)) (interval b (b + db)))
            ()
        done
      done
    done
  done;
  Alcotest.(check int) "13 relations" 13 (Hashtbl.length seen)

(* ---------- LEBI / bgFS vs the reference sweeps ---------- *)

let items_of l =
  Array.of_list
    (List.map (fun (id, a, b) -> Span_item.make id (Interval.make a b)) l)

let rel l = Relation.of_items (items_of l)

let pairs join l r =
  let acc = ref [] in
  let _ = join l r ~f:(fun a b -> acc := (Span_item.id a, Span_item.id b) :: !acc) in
  List.sort compare !acc

let test_lebi_small () =
  let l = rel [ (0, 1, 5); (1, 4, 8); (2, 4, 4) ] in
  let r = rel [ (10, 5, 6); (11, 9, 9); (12, 4, 10) ] in
  Alcotest.(check (list (pair int int)))
    "pairs"
    (pairs (fun l r ~f -> Sweep_join.join l r ~f) l r)
    (pairs Lebi.join l r)

let test_bgfs_small () =
  let l = rel [ (0, 1, 5); (1, 1, 2); (2, 1, 9) ] in
  let r = rel [ (10, 1, 1); (11, 2, 3); (12, 20, 21) ] in
  Alcotest.(check (list (pair int int)))
    "pairs with tied starts"
    (pairs (fun l r ~f -> Sweep_join.join l r ~f) l r)
    (pairs Bgfs.join l r)

let test_new_joins_empty () =
  let e = Relation.empty and r = rel [ (0, 1, 2) ] in
  Alcotest.(check int) "lebi empty" 0 (Lebi.count e r);
  Alcotest.(check int) "lebi empty right" 0 (Lebi.count r e);
  Alcotest.(check int) "bgfs empty" 0 (Bgfs.count e r);
  Alcotest.(check int) "bgfs empty right" 0 (Bgfs.count r e)

let gen_rel =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (pair (int_range 0 30) (int_range 0 10) >|= fun (s, d) -> (s, s + d)))

let arb_two_rels =
  QCheck.make
    QCheck.Gen.(pair gen_rel gen_rel)
    ~print:(fun (a, b) ->
      let s l =
        String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "[%d,%d]" x y) l)
      in
      s a ^ " | " ^ s b)

let mk side spans = rel (List.mapi (fun i (a, b) -> ((side * 1000) + i, a, b)) spans)

let prop_lebi_matches_sweep =
  QCheck.Test.make ~name:"LEBI = EBI sweep" ~count:300 arb_two_rels
    (fun (a, b) ->
      let l = mk 0 a and r = mk 1 b in
      pairs Lebi.join l r = pairs (fun l r ~f -> Sweep_join.join l r ~f) l r)

let prop_bgfs_matches_sweep =
  QCheck.Test.make ~name:"bgFS = EBI sweep" ~count:300 arb_two_rels
    (fun (a, b) ->
      let l = mk 0 a and r = mk 1 b in
      pairs Bgfs.join l r = pairs (fun l r ~f -> Sweep_join.join l r ~f) l r)

let prop_all_four_agree_on_counts =
  QCheck.Test.make ~name:"EBI = gFS = LEBI = bgFS (counts)" ~count:200
    arb_two_rels (fun (a, b) ->
      let l = mk 0 a and r = mk 1 b in
      let c = Sweep_join.count l r in
      Forward_scan.count l r = c && Lebi.count l r = c && Bgfs.count l r = c)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "temporal_extra"
    [
      ( "allen",
        [
          Alcotest.test_case "examples" `Quick test_allen_examples;
          Alcotest.test_case "all 13 reachable" `Quick test_allen_all_reachable;
        ] );
      ( "joins",
        [
          Alcotest.test_case "lebi small" `Quick test_lebi_small;
          Alcotest.test_case "bgfs tied starts" `Quick test_bgfs_small;
          Alcotest.test_case "empty relations" `Quick test_new_joins_empty;
        ] );
      qsuite "allen-properties" [ prop_allen_unique; prop_allen_inverse_involution ];
      qsuite "join-properties"
        [ prop_lebi_matches_sweep; prop_bgfs_matches_sweep; prop_all_four_agree_on_counts ];
    ]
