(* Tests for the temporal-graph substrate: labels, edges, builder, IO,
   stats, generators, datasets. *)

open Tgraph

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ---------- Label ---------- *)

let test_label_interning () =
  let t = Label.create () in
  let a = Label.intern t "congested" in
  let b = Label.intern t "fluid" in
  let a' = Label.intern t "congested" in
  Alcotest.(check int) "stable id" a a';
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "count" 2 (Label.count t);
  Alcotest.(check string) "name" "fluid" (Label.name t b);
  Alcotest.(check (option int)) "find" (Some a) (Label.find t "congested");
  Alcotest.(check (option int)) "find missing" None (Label.find t "x");
  check_invalid "bad id" (fun () -> ignore (Label.name t 99))

let test_label_of_names () =
  let t = Label.of_names [| "a"; "b"; "c" |] in
  Alcotest.(check int) "ids follow order" 1 (Option.get (Label.find t "b"));
  check_invalid "duplicates rejected" (fun () ->
      ignore (Label.of_names [| "a"; "a" |]))

(* ---------- Graph builder ---------- *)

let small_graph () =
  Graph.of_edge_list
    [ (0, 1, 0, 0, 5); (1, 2, 1, 3, 8); (2, 0, 0, 6, 9); (0, 2, 1, 2, 4) ]

let test_builder_basics () =
  let g = small_graph () in
  Alcotest.(check int) "n_edges" 4 (Graph.n_edges g);
  Alcotest.(check int) "n_vertices" 3 (Graph.n_vertices g);
  Alcotest.(check int) "n_labels" 2 (Graph.n_labels g);
  let e = Graph.edge g 1 in
  Alcotest.(check int) "src" 1 (Edge.src e);
  Alcotest.(check int) "dst" 2 (Edge.dst e);
  Alcotest.(check int) "ts" 3 (Edge.ts e);
  check_invalid "bad edge id" (fun () -> ignore (Graph.edge g 99))

let test_builder_validation () =
  let b = Graph.Builder.create () in
  check_invalid "negative vertex" (fun () ->
      ignore (Graph.Builder.add_edge_named b ~src:(-1) ~dst:0 ~lbl:"a" ~ts:0 ~te:1));
  check_invalid "bad interval" (fun () ->
      ignore (Graph.Builder.add_edge_named b ~src:0 ~dst:1 ~lbl:"a" ~ts:5 ~te:4));
  check_invalid "unknown label id" (fun () ->
      ignore (Graph.Builder.add_edge b ~src:0 ~dst:1 ~lbl:7 ~ts:0 ~te:1))

let test_time_domain () =
  let g = small_graph () in
  Alcotest.(check int) "domain start" 0 (Temporal.Interval.ts (Graph.time_domain g));
  Alcotest.(check int) "domain end" 9 (Temporal.Interval.te (Graph.time_domain g))

let test_window_of_fraction () =
  let g = small_graph () in
  let w = Graph.window_of_fraction g ~frac:0.5 ~at:0.0 in
  Alcotest.(check int) "width" 5 (Temporal.Interval.length w);
  Alcotest.(check int) "starts at domain start" 0 (Temporal.Interval.ts w);
  let w1 = Graph.window_of_fraction g ~frac:0.5 ~at:1.0 in
  Alcotest.(check int) "ends at domain end" 9 (Temporal.Interval.te w1);
  check_invalid "frac out of range" (fun () ->
      ignore (Graph.window_of_fraction g ~frac:0.0 ~at:0.0))

let test_prefix () =
  let g = small_graph () in
  let p = Graph.prefix g 2 in
  Alcotest.(check int) "edges" 2 (Graph.n_edges p);
  Alcotest.(check int) "vertices shrink" 3 (Graph.n_vertices p);
  Alcotest.(check int) "full prefix" 4 (Graph.n_edges (Graph.prefix g 4));
  check_invalid "too large" (fun () -> ignore (Graph.prefix g 5))

(* ---------- IO ---------- *)

let test_io_roundtrip () =
  let g = small_graph () in
  let path = Filename.temp_file "tcsq_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save g path;
      let g' = Io.load path in
      Alcotest.(check int) "edges" (Graph.n_edges g) (Graph.n_edges g');
      Alcotest.(check int) "vertices" (Graph.n_vertices g) (Graph.n_vertices g');
      for i = 0 to Graph.n_edges g - 1 do
        let a = Graph.edge g i and b = Graph.edge g' i in
        Alcotest.(check bool)
          (Printf.sprintf "edge %d equal" i)
          true
          (Edge.src a = Edge.src b && Edge.dst a = Edge.dst b
          && Edge.ts a = Edge.ts b && Edge.te a = Edge.te b);
        Alcotest.(check string)
          "label name"
          (Label.name (Graph.labels g) (Edge.lbl a))
          (Label.name (Graph.labels g') (Edge.lbl b))
      done)

let test_io_rejects_garbage () =
  let path = Filename.temp_file "tcsq_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "1,2,a,0\n";
      close_out oc;
      Alcotest.check_raises "malformed line" (Io.Malformed "")
        (fun () ->
          try ignore (Io.load path)
          with Io.Malformed _ -> raise (Io.Malformed "")))

(* ---------- contact-sequence import ---------- *)

let test_load_contacts () =
  let path = Filename.temp_file "tcsq_contacts" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# SNAP-style contacts\n";
      output_string oc "0 1 100\n";
      output_string oc "1\t2\t105\n";
      output_string oc "\n";
      output_string oc "2 0 200\n";
      close_out oc;
      let g = Io.load_contacts ~duration:10 path in
      Alcotest.(check int) "edges" 3 (Graph.n_edges g);
      Alcotest.(check int) "vertices" 3 (Graph.n_vertices g);
      let e = Graph.edge g 0 in
      Alcotest.(check int) "ts" 100 (Edge.ts e);
      Alcotest.(check int) "te" 109 (Edge.te e);
      Alcotest.(check string) "label" "contact"
        (Label.name (Graph.labels g) (Edge.lbl e)))

let test_load_contacts_rejects () =
  let path = Filename.temp_file "tcsq_contacts" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0 1\n";
      close_out oc;
      Alcotest.check_raises "two fields" (Io.Malformed "") (fun () ->
          try ignore (Io.load_contacts ~duration:5 path)
          with Io.Malformed _ -> raise (Io.Malformed "")));
  Alcotest.check_raises "bad duration" (Invalid_argument "") (fun () ->
      try ignore (Io.load_contacts ~duration:0 "/dev/null")
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* ---------- Binary codec ---------- *)

let test_binary_roundtrip () =
  let g =
    Generator.generate
      {
        topology = Uniform_random { n_vertices = 20 };
        n_edges = 300;
        n_labels = 4;
        domain = 500;
        mean_duration = 15.0;
        label_affinity = None;
        seed = 99;
      }
  in
  let bytes = Binary_io.to_bytes g in
  let g' = Binary_io.of_bytes bytes in
  Alcotest.(check int) "edges" (Graph.n_edges g) (Graph.n_edges g');
  Alcotest.(check int) "vertices" (Graph.n_vertices g) (Graph.n_vertices g');
  for i = 0 to Graph.n_edges g - 1 do
    let a = Graph.edge g i and b = Graph.edge g' i in
    if
      not
        (Edge.src a = Edge.src b && Edge.dst a = Edge.dst b
        && Edge.lbl a = Edge.lbl b && Edge.ts a = Edge.ts b
        && Edge.te a = Edge.te b)
    then Alcotest.failf "edge %d differs after binary round trip" i
  done;
  Alcotest.(check (array string))
    "label names"
    (Label.names (Graph.labels g))
    (Label.names (Graph.labels g'))

let test_binary_file_roundtrip () =
  let g = small_graph () in
  let path = Filename.temp_file "tcsq_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binary_io.save g path;
      let g' = Binary_io.load path in
      Alcotest.(check int) "edges" (Graph.n_edges g) (Graph.n_edges g'))

let test_binary_rejects_corruption () =
  let g = small_graph () in
  let bytes = Binary_io.to_bytes g in
  let expect_failure name data =
    Alcotest.check_raises name (Io.Malformed "") (fun () ->
        try ignore (Binary_io.of_bytes data)
        with Io.Malformed _ -> raise (Io.Malformed ""))
  in
  (* bad magic *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 0 'X';
  expect_failure "bad magic" bad;
  (* truncation *)
  expect_failure "truncated" (Bytes.sub bytes 0 (Bytes.length bytes - 2));
  (* trailing garbage *)
  expect_failure "trailing bytes" (Bytes.cat bytes (Bytes.of_string "junk"))

let test_binary_smaller_than_csv () =
  let g =
    Generator.generate
      {
        topology = Uniform_random { n_vertices = 50 };
        n_edges = 2000;
        n_labels = 4;
        domain = 5000;
        mean_duration = 40.0;
        label_affinity = None;
        seed = 5;
      }
  in
  let bin = Bytes.length (Binary_io.to_bytes g) in
  let csv = Filename.temp_file "tcsq_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove csv)
    (fun () ->
      Io.save g csv;
      let csv_size = (Unix.stat csv).Unix.st_size in
      Alcotest.(check bool)
        (Printf.sprintf "binary (%d) < csv (%d)" bin csv_size)
        true (bin < csv_size))

(* ---------- Stats ---------- *)

let test_stats () =
  let g = small_graph () in
  let s = Stats.compute g in
  Alcotest.(check int) "edges" 4 s.Stats.n_edges;
  Alcotest.(check int) "labels" 2 s.Stats.n_labels;
  Alcotest.(check int) "max interval" 6 s.Stats.max_interval_length;
  Alcotest.(check bool) "mean length" true
    (abs_float (s.Stats.mean_interval_length -. 4.75) < 1e-9);
  Alcotest.(check int) "max out degree" 2 s.Stats.max_out_degree

let test_stats_empty () =
  let g = Graph.Builder.finish (Graph.Builder.create ()) in
  let s = Stats.compute g in
  Alcotest.(check int) "edges" 0 s.Stats.n_edges;
  Alcotest.(check bool) "no domain" true (s.Stats.domain = None)

(* ---------- Generator / datasets ---------- *)

let test_generator_deterministic () =
  let cfg : Generator.config =
    {
      topology = Uniform_random { n_vertices = 50 };
      n_edges = 500;
      n_labels = 4;
      domain = 1000;
      mean_duration = 20.0;
      label_affinity = None;
      seed = 7;
    }
  in
  let g1 = Generator.generate cfg and g2 = Generator.generate cfg in
  Alcotest.(check int) "same size" (Graph.n_edges g1) (Graph.n_edges g2);
  let same = ref true in
  for i = 0 to Graph.n_edges g1 - 1 do
    let a = Graph.edge g1 i and b = Graph.edge g2 i in
    if
      not
        (Edge.src a = Edge.src b && Edge.dst a = Edge.dst b
        && Edge.lbl a = Edge.lbl b && Edge.ts a = Edge.ts b
        && Edge.te a = Edge.te b)
    then same := false
  done;
  Alcotest.(check bool) "identical edge streams" true !same;
  let g3 = Generator.generate { cfg with seed = 8 } in
  let differs = ref false in
  for i = 0 to min (Graph.n_edges g1) (Graph.n_edges g3) - 1 do
    if Edge.ts (Graph.edge g1 i) <> Edge.ts (Graph.edge g3 i) then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_generator_grid_topology () =
  let cfg : Generator.config =
    {
      topology = Grid { rows = 5; cols = 7 };
      n_edges = 300;
      n_labels = 3;
      domain = 100;
      mean_duration = 10.0;
      label_affinity = None;
      seed = 3;
    }
  in
  let g = Generator.generate cfg in
  Alcotest.(check bool) "vertices bounded by grid" true (Graph.n_vertices g <= 35);
  (* edges connect 4-neighbours or diagonal neighbours *)
  let ok = ref true in
  Graph.iter_edges
    (fun e ->
      let r1 = Edge.src e / 7 and c1 = Edge.src e mod 7 in
      let r2 = Edge.dst e / 7 and c2 = Edge.dst e mod 7 in
      let dr = abs (r1 - r2) and dc = abs (c1 - c2) in
      if not (dr <= 1 && dc <= 1 && dr + dc > 0) then ok := false)
    g;
  Alcotest.(check bool) "grid adjacency" true !ok

let test_generator_domain_respected () =
  let cfg : Generator.config =
    {
      topology = Uniform_random { n_vertices = 10 };
      n_edges = 400;
      n_labels = 2;
      domain = 50;
      mean_duration = 30.0;
      label_affinity = None;
      seed = 5;
    }
  in
  let g = Generator.generate cfg in
  let ok = ref true in
  Graph.iter_edges (fun e -> if Edge.ts e < 0 || Edge.te e > 49 then ok := false) g;
  Alcotest.(check bool) "intervals inside domain" true !ok

let test_dataset_presets () =
  Array.iter
    (fun name ->
      let cfg = Dataset.config ~scale:0.02 name in
      let g = Generator.generate cfg in
      Alcotest.(check bool)
        (Dataset.to_string name ^ " non-empty")
        true
        (Graph.n_edges g > 0))
    Dataset.all

let test_dataset_shapes () =
  (* the headline dataset contrast: taxi intervals are long, bike
     intervals short *)
  let scale = 0.05 in
  let yellow = Stats.compute (Dataset.graph ~scale Dataset.Yellow) in
  let bike = Stats.compute (Dataset.graph ~scale Dataset.Bike) in
  Alcotest.(check bool)
    "yellow intervals much longer than bike" true
    (yellow.Stats.mean_interval_length > 5.0 *. bike.Stats.mean_interval_length)

let test_dataset_profiles () =
  (* regression guard on the Table III shape (DESIGN.md §3): interval
     profiles and density ratios the reproduction depends on *)
  let scale = 0.1 in
  let stats name = Stats.compute (Dataset.graph ~scale name) in
  let yellow = stats Dataset.Yellow in
  let bike = stats Dataset.Bike in
  let stack = stats Dataset.Stack in
  let caida = stats Dataset.Caida in
  (* transportation: tiny vertex sets, heavy multi-edges *)
  Alcotest.(check bool) "yellow density" true
    (yellow.Stats.n_edges / yellow.Stats.n_vertices > 10);
  (* interval-length contrast relative to each domain *)
  let rel s =
    s.Stats.mean_interval_length
    /. float_of_int
         (match s.Stats.domain with
         | Some d -> Temporal.Interval.length d
         | None -> 1)
  in
  Alcotest.(check bool) "yellow relatively long" true (rel yellow > 2.0 *. rel bike);
  Alcotest.(check bool) "caida longest" true (rel caida > rel yellow);
  (* power-law graphs have hub skew *)
  Alcotest.(check bool) "stack hubs" true
    (float_of_int stack.Stats.max_out_degree
    > 5.0 *. stack.Stats.mean_out_degree)

let test_dataset_memoization () =
  let a = Dataset.graph ~scale:0.03 Dataset.Green in
  let b = Dataset.graph ~scale:0.03 Dataset.Green in
  Alcotest.(check bool) "same instance" true (a == b);
  let c = Dataset.graph ~scale:0.04 Dataset.Green in
  Alcotest.(check bool) "distinct per scale" true (a != c)

let test_dataset_of_string () =
  Alcotest.(check bool) "roundtrip" true
    (Array.for_all
       (fun n -> Dataset.of_string (Dataset.to_string n) = Some n)
       Dataset.all);
  Alcotest.(check bool) "unknown" true (Dataset.of_string "nope" = None)

let () =
  Alcotest.run "tgraph"
    [
      ( "label",
        [
          Alcotest.test_case "interning" `Quick test_label_interning;
          Alcotest.test_case "of_names" `Quick test_label_of_names;
        ] );
      ( "graph",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basics;
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
          Alcotest.test_case "time domain" `Quick test_time_domain;
          Alcotest.test_case "window_of_fraction" `Quick test_window_of_fraction;
          Alcotest.test_case "prefix subsets" `Quick test_prefix;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "contact sequences" `Quick test_load_contacts;
          Alcotest.test_case "contact validation" `Quick test_load_contacts_rejects;
        ] );
      ( "binary_io",
        [
          Alcotest.test_case "bytes roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_binary_file_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_binary_rejects_corruption;
          Alcotest.test_case "smaller than csv" `Quick test_binary_smaller_than_csv;
        ] );
      ( "stats",
        [
          Alcotest.test_case "small graph" `Quick test_stats;
          Alcotest.test_case "empty graph" `Quick test_stats_empty;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "grid topology" `Quick test_generator_grid_topology;
          Alcotest.test_case "domain respected" `Quick test_generator_domain_respected;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "presets generate" `Quick test_dataset_presets;
          Alcotest.test_case "interval-length contrast" `Quick test_dataset_shapes;
          Alcotest.test_case "profile regression" `Quick test_dataset_profiles;
          Alcotest.test_case "memoization" `Quick test_dataset_memoization;
          Alcotest.test_case "name roundtrip" `Quick test_dataset_of_string;
        ] );
    ]
