(* Tests for time-respecting journeys and earliest-arrival reachability,
   cross-checked against a brute-force journey search. *)

open Tpath

let window a b = Temporal.Interval.make a b

let graph () =
  (* a temporal line with a shortcut that expires too early:
     0 -> 1 valid [0,5]; 1 -> 2 valid [3,8]; 2 -> 3 valid [10,12];
     0 -> 3 valid [0,1] (shortcut); 3 -> 0 valid [20,21] (back edge) *)
  Tgraph.Graph.of_edge_list
    [
      (0, 1, 0, 0, 5);
      (1, 2, 0, 3, 8);
      (2, 3, 0, 10, 12);
      (0, 3, 0, 0, 1);
      (3, 0, 0, 20, 21);
    ]

let test_earliest_arrival_basic () =
  let g = graph () in
  let r = Reachability.earliest_arrival g ~src:0 in
  Alcotest.(check (option int)) "self" (Some 0) (Reachability.arrival r 0);
  Alcotest.(check (option int)) "v1" (Some 0) (Reachability.arrival r 1);
  Alcotest.(check (option int)) "v2 waits for the edge" (Some 3)
    (Reachability.arrival r 2);
  (* v3 via the shortcut at time 0 beats the long way (10) *)
  Alcotest.(check (option int)) "v3 shortcut" (Some 0) (Reachability.arrival r 3);
  Alcotest.(check int) "all reachable" 4 (Reachability.reachable_count r)

let test_earliest_arrival_window () =
  let g = graph () in
  (* departing at or after t = 2: the shortcut (ends at 1) is unusable *)
  let r = Reachability.earliest_arrival ~window:(window 2 30) g ~src:0 in
  Alcotest.(check (option int)) "v1" (Some 2) (Reachability.arrival r 1);
  Alcotest.(check (option int)) "v2" (Some 3) (Reachability.arrival r 2);
  Alcotest.(check (option int)) "v3 long way" (Some 10) (Reachability.arrival r 3);
  (* tight arrival deadline cuts v3 *)
  let r9 = Reachability.earliest_arrival ~window:(window 2 9) g ~src:0 in
  Alcotest.(check bool) "v3 unreachable by 9" false (Reachability.reachable r9 3)

let test_time_respect () =
  (* edge into v2 only BEFORE the edge out of v1 exists: not a journey *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 10, 12); (1, 2, 0, 0, 5) ] in
  let r = Reachability.earliest_arrival g ~src:0 in
  Alcotest.(check bool) "v1 reachable" true (Reachability.reachable r 1);
  Alcotest.(check bool) "v2 needs time travel" false (Reachability.reachable r 2)

let test_journey_reconstruction () =
  let g = graph () in
  let r = Reachability.earliest_arrival ~window:(window 2 30) g ~src:0 in
  match Reachability.journey_to r 3 with
  | None -> Alcotest.fail "expected a journey to v3"
  | Some j -> (
      Alcotest.(check int) "hops" 3 (Journey.length j);
      Alcotest.(check int) "arrival" 10 j.Journey.arrival;
      match Journey.verify g ~src:0 j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "journey does not verify: %s" e)

let test_journey_verify_rejects () =
  let g = graph () in
  let bad = { Journey.edges = [ 0; 2 ]; departure = 0; arrival = 10 } in
  (* 0: 0->1, 2: 2->3 — disconnected *)
  Alcotest.(check bool) "disconnected rejected" true
    (Result.is_error (Journey.verify g ~src:0 bad));
  let late = { Journey.edges = [ 3 ]; departure = 2; arrival = 2 } in
  (* shortcut departs at 2 but expires at 1 *)
  Alcotest.(check bool) "late departure rejected" true
    (Result.is_error (Journey.verify g ~src:0 late));
  let wrong_arrival = { Journey.edges = [ 0 ]; departure = 0; arrival = 9 } in
  (* edge 0 ends at 5 *)
  Alcotest.(check bool) "impossible arrival rejected" true
    (Result.is_error (Journey.verify g ~src:0 wrong_arrival))

(* brute force: DFS over edge sequences with at most |V| hops *)
let brute_reachable g ~src ~ws ~we =
  let n = Tgraph.Graph.n_vertices g in
  let best = Array.make n max_int in
  best.(src) <- ws;
  let rec explore u at depth =
    if depth < n then
      Tgraph.Graph.iter_edges
        (fun e ->
          if Tgraph.Edge.src e = u then begin
            let depart = max at (Tgraph.Edge.ts e) in
            if depart <= Tgraph.Edge.te e && depart <= we then begin
              let v = Tgraph.Edge.dst e in
              if depart < best.(v) then begin
                best.(v) <- depart;
                explore v depart (depth + 1)
              end
            end
          end)
        g
  in
  explore src ws 0;
  Array.map (fun a -> if a = max_int then None else Some a) best

let prop_matches_brute =
  QCheck.Test.make ~name:"earliest arrival = brute force" ~count:100
    QCheck.(pair (int_range 0 5000) (int_range 0 25))
    (fun (seed, ws) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:7 ~n_edges:30 ~n_labels:2
          ~domain:30 ~max_len:8 ()
      in
      let we = ws + 10 in
      let src = seed mod Tgraph.Graph.n_vertices g in
      let r = Reachability.earliest_arrival ~window:(window ws we) g ~src in
      let expected = brute_reachable g ~src ~ws ~we in
      let ok = ref true in
      Array.iteri
        (fun v e -> if Reachability.arrival r v <> e then ok := false)
        expected;
      !ok)

let prop_journeys_verify =
  QCheck.Test.make ~name:"reconstructed journeys verify" ~count:100
    QCheck.(int_range 0 5000)
    (fun seed ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:25 ~n_labels:2
          ~domain:25 ~max_len:6 ()
      in
      let src = seed mod Tgraph.Graph.n_vertices g in
      let r = Reachability.earliest_arrival g ~src in
      let ok = ref true in
      for v = 0 to Tgraph.Graph.n_vertices g - 1 do
        match Reachability.journey_to r v with
        | None -> ()
        | Some j -> (
            match Journey.verify g ~src j with Ok () -> () | Error _ -> ok := false)
      done;
      !ok)

(* ---------- latest departure / fastest ---------- *)

let test_latest_departure_basic () =
  let g = graph () in
  (* reach v3 by the domain end: via 2->3 (valid [10,12]) or the
     shortcut 0->3 (valid [0,1]) *)
  let departs = Reachability.latest_departure g ~dst:3 in
  Alcotest.(check int) "dst itself" 21 departs.(3);
  Alcotest.(check int) "v2 leaves by 12" 12 departs.(2);
  (* from v1: 1->2 must happen by 8, then 2->3 at 10: leave v1 by 8 *)
  Alcotest.(check int) "v1 leaves by 8" 8 departs.(1);
  (* from v0: either shortcut (by 1) or 0->1 by 5: 5 wins *)
  Alcotest.(check int) "v0 leaves by 5" 5 departs.(0)

let test_latest_departure_unreachable () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 10, 12); (1, 2, 0, 0, 5) ] in
  let departs = Reachability.latest_departure g ~dst:2 in
  Alcotest.(check bool) "v0 cannot reach v2" true (departs.(0) = min_int);
  Alcotest.(check int) "v1 can, by 5" 5 departs.(1)

let test_fastest_duration () =
  (* waiting at the source must not count: first edge [0,10], second
     [9,9]: depart at 9, duration 1 *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 10); (1, 2, 0, 9, 9) ] in
  Alcotest.(check (option int)) "instantaneous" (Some 1)
    (Reachability.fastest_duration g ~src:0 ~dst:2);
  (* forced wait: second edge strictly later *)
  let g2 = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 4); (1, 2, 0, 8, 9) ] in
  Alcotest.(check (option int)) "forced wait 4..8" (Some 5)
    (Reachability.fastest_duration g2 ~src:0 ~dst:2);
  Alcotest.(check (option int)) "self" (Some 1)
    (Reachability.fastest_duration g ~src:1 ~dst:1);
  Alcotest.(check (option int)) "unreachable" None
    (Reachability.fastest_duration g ~src:2 ~dst:0)

(* brute force over edge sequences with <= |V| hops, at their latest
   feasible schedules *)
let brute_fastest g ~src ~dst ~ws ~we =
  let n = Tgraph.Graph.n_vertices g in
  let best = ref None in
  let edges = Tgraph.Graph.edges g in
  let rec extend seq_rev at hops =
    if hops < n then
      Array.iter
        (fun e ->
          if Tgraph.Edge.src e = at then begin
            let seq_rev = e :: seq_rev in
            if Tgraph.Edge.dst e = dst then begin
              (* latest schedule backward *)
              let rec caps acc bound = function
                | [] -> acc
                | e :: rest ->
                    let b = min bound (min (Tgraph.Edge.te e) we) in
                    caps (b :: acc) b rest
              in
              let bounds = caps [] max_int seq_rev in
              (* bounds are per-edge caps in forward order *)
              let seq = List.rev seq_rev in
              let rec forward t = function
                | [], [] -> Some t
                | e :: rest, b :: brest ->
                    let instant = max t (max ws (Tgraph.Edge.ts e)) in
                    if instant > b then None
                    else forward instant (rest, brest)
                | _ -> assert false
              in
              (* departure = first instant of the latest schedule: walk
                 forward with instants as late as caps allow from the
                 first cap *)
              match (seq, bounds) with
              | e0 :: _, b0 :: _ ->
                  let depart = b0 in
                  if depart >= max ws (Tgraph.Edge.ts e0) then begin
                    match forward depart (seq, bounds) with
                    | Some arrive ->
                        let d = arrive - depart + 1 in
                        (match !best with
                        | Some b when b <= d -> ()
                        | Some _ | None -> best := Some d)
                    | None -> ()
                  end
              | _ -> ()
            end;
            extend seq_rev (Tgraph.Edge.dst e) (hops + 1)
          end)
        edges
  in
  extend [] src 0;
  !best

let prop_fastest_matches_brute =
  QCheck.Test.make ~name:"fastest duration = brute force" ~count:60
    QCheck.(pair (int_range 0 5000) (int_range 0 15))
    (fun (seed, ws) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:15 ~n_labels:1
          ~domain:25 ~max_len:8 ()
      in
      let we = ws + 12 in
      let src = seed mod 5 and dst = (seed / 7) mod 5 in
      if src = dst then true
      else
        Reachability.fastest_duration
          ~window:(window ws we) g ~src ~dst
        = brute_fastest g ~src ~dst ~ws ~we)

let prop_latest_departure_consistent =
  QCheck.Test.make
    ~name:"latest departure: departing then is feasible, later is not"
    ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:6 ~n_edges:25 ~n_labels:1
          ~domain:25 ~max_len:6 ()
      in
      let dst = seed mod 6 in
      let departs = Reachability.latest_departure g ~dst in
      let ok = ref true in
      for v = 0 to 5 do
        if v <> dst && departs.(v) > min_int then begin
          (* departing at departs.(v) reaches dst *)
          let r =
            Reachability.earliest_arrival
              ~window:(window departs.(v) (Temporal.Interval.te (Tgraph.Graph.time_domain g)))
              g ~src:v
          in
          if not (Reachability.reachable r dst) then ok := false;
          (* departing any later does not *)
          let domain_end = Temporal.Interval.te (Tgraph.Graph.time_domain g) in
          if departs.(v) < domain_end then begin
            let r' =
              Reachability.earliest_arrival
                ~window:(window (departs.(v) + 1) domain_end)
                g ~src:v
            in
            if Reachability.reachable r' dst then ok := false
          end
        end
      done;
      !ok)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "tpath"
    [
      ( "reachability",
        [
          Alcotest.test_case "earliest arrival" `Quick test_earliest_arrival_basic;
          Alcotest.test_case "window restricts" `Quick test_earliest_arrival_window;
          Alcotest.test_case "time respecting" `Quick test_time_respect;
        ] );
      ( "journeys",
        [
          Alcotest.test_case "reconstruction verifies" `Quick test_journey_reconstruction;
          Alcotest.test_case "verify rejects bad journeys" `Quick
            test_journey_verify_rejects;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "latest departure" `Quick test_latest_departure_basic;
          Alcotest.test_case "latest departure unreachable" `Quick
            test_latest_departure_unreachable;
          Alcotest.test_case "fastest duration" `Quick test_fastest_duration;
        ] );
      qsuite "properties"
        [
          prop_matches_brute;
          prop_journeys_verify;
          prop_fastest_matches_brute;
          prop_latest_departure_consistent;
        ];
    ]
