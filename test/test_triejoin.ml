(* Tests for the triejoin substrate: slices, grouping, key iterators,
   leapfrog intersection, and the static adjacency index. *)

open Triejoin

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ---------- Slice ---------- *)

let test_slice () =
  let s = Slice.make [| 10; 20; 30; 40 |] ~off:1 ~len:2 in
  Alcotest.(check int) "length" 2 (Slice.length s);
  Alcotest.(check int) "get" 30 (Slice.get s 1);
  Alcotest.(check (list int)) "to_list" [ 20; 30 ] (Slice.to_list s);
  let s2 = Slice.sub s ~off:1 ~len:1 in
  Alcotest.(check (list int)) "sub" [ 30 ] (Slice.to_list s2);
  check_invalid "oob window" (fun () -> ignore (Slice.make [| 1 |] ~off:0 ~len:2));
  check_invalid "oob get" (fun () -> ignore (Slice.get s 2))

(* ---------- Grouping ---------- *)

let test_grouping () =
  let arr = [| 1; 1; 3; 3; 3; 7 |] in
  let g = Grouping.group arr ~off:0 ~len:6 ~key:Fun.id in
  Alcotest.(check int) "groups" 3 (Grouping.n_groups g);
  Alcotest.(check (option int)) "find 3" (Some 1) (Grouping.find g 3);
  Alcotest.(check (option int)) "find missing" None (Grouping.find g 4);
  Alcotest.(check (pair int int)) "range" (2, 3) (Grouping.range g 1);
  check_invalid "unsorted rejected" (fun () ->
      ignore (Grouping.group [| 2; 1 |] ~off:0 ~len:2 ~key:Fun.id))

let test_grouping_window () =
  let arr = [| 9; 5; 5; 6; 9 |] in
  let g = Grouping.group arr ~off:1 ~len:3 ~key:Fun.id in
  Alcotest.(check int) "groups in window" 2 (Grouping.n_groups g);
  Alcotest.(check (pair int int)) "offsets absolute" (1, 2) (Grouping.range g 0)

(* ---------- Key_iter / Leapfrog ---------- *)

let test_key_iter_seek () =
  let it = Key_iter.of_sorted_array [| 1; 4; 9; 12 |] in
  Key_iter.seek it 5;
  Alcotest.(check int) "first >= 5" 9 (Key_iter.key it);
  Key_iter.seek it 9;
  Alcotest.(check int) "seek to current stays" 9 (Key_iter.key it);
  Key_iter.seek it 13;
  Alcotest.(check bool) "past end" true (Key_iter.at_end it);
  check_invalid "non-strict rejected" (fun () ->
      ignore (Key_iter.of_sorted_array [| 1; 1 |]))

let test_leapfrog_basic () =
  let sets = [ [| 1; 3; 5; 7; 9 |]; [| 2; 3; 5; 8; 9 |]; [| 3; 4; 5; 9; 11 |] ] in
  Alcotest.(check (list int))
    "intersection" [ 3; 5; 9 ]
    (Array.to_list (Leapfrog.intersect_arrays sets))

let test_leapfrog_edge_cases () =
  Alcotest.(check (list int))
    "single relation" [ 1; 2 ]
    (Array.to_list (Leapfrog.intersect_arrays [ [| 1; 2 |] ]));
  Alcotest.(check (list int))
    "empty member" []
    (Array.to_list (Leapfrog.intersect_arrays [ [| 1; 2 |]; [||] ]));
  Alcotest.(check (list int))
    "disjoint" []
    (Array.to_list (Leapfrog.intersect_arrays [ [| 1; 3 |]; [| 2; 4 |] ]))

let module_set_intersect lists =
  let module S = Set.Make (Int) in
  match List.map (fun a -> S.of_list (Array.to_list a)) lists with
  | [] -> []
  | first :: rest -> S.elements (List.fold_left S.inter first rest)

let prop_leapfrog_matches_sets =
  QCheck.Test.make ~name:"leapfrog = set intersection" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 4) (list (int_bound 30)))
    (fun lists ->
      let arrays =
        List.map
          (fun l -> Array.of_list (List.sort_uniq Int.compare l))
          lists
      in
      Array.to_list (Leapfrog.intersect_arrays arrays)
      = module_set_intersect arrays)

(* ---------- Adjacency ---------- *)

let graph () =
  (* labels: 0 = a, 1 = b *)
  Tgraph.Graph.of_edge_list
    [
      (0, 1, 0, 0, 5);
      (* e0 *)
      (0, 1, 0, 3, 8);
      (* e1: parallel edge, later start *)
      (0, 2, 0, 1, 2);
      (* e2 *)
      (1, 2, 1, 4, 9);
      (* e3 *)
      (2, 1, 0, 7, 7);
      (* e4 *)
    ]

let ids slice = List.sort compare (List.map Tgraph.Edge.id (Slice.to_list slice))

let test_adjacency_lookups () =
  let adj = Adjacency.build (graph ()) in
  Alcotest.(check (list int)) "out(a, 0)" [ 0; 1; 2 ] (ids (Adjacency.out_edges adj ~lbl:0 ~src:0));
  Alcotest.(check (list int)) "in(a, 1)" [ 0; 1; 4 ] (ids (Adjacency.in_edges adj ~lbl:0 ~dst:1));
  Alcotest.(check (list int)) "between(a, 0, 1)" [ 0; 1 ]
    (ids (Adjacency.edges_between adj ~lbl:0 ~src:0 ~dst:1));
  Alcotest.(check (list int)) "missing label" [] (ids (Adjacency.out_edges adj ~lbl:9 ~src:0));
  Alcotest.(check (list int)) "missing src" [] (ids (Adjacency.out_edges adj ~lbl:0 ~src:9));
  Alcotest.(check (list int)) "label edges b" [ 3 ] (ids (Adjacency.label_edges adj ~lbl:1))

let test_adjacency_keys () =
  let adj = Adjacency.build (graph ()) in
  Alcotest.(check (list int)) "sources(a)" [ 0; 2 ]
    (Array.to_list (Adjacency.sources adj ~lbl:0));
  Alcotest.(check (list int)) "destinations(a)" [ 1; 2 ]
    (Array.to_list (Adjacency.destinations adj ~lbl:0));
  Alcotest.(check (list int)) "dst_keys(a, 0)" [ 1; 2 ]
    (Array.to_list (Adjacency.dst_keys adj ~lbl:0 ~src:0));
  Alcotest.(check (list int)) "src_keys(a, 1)" [ 0; 2 ]
    (Array.to_list (Adjacency.src_keys adj ~lbl:0 ~dst:1))

let test_adjacency_between_start_sorted () =
  let adj = Adjacency.build (graph ()) in
  let slice = Adjacency.edges_between adj ~lbl:0 ~src:0 ~dst:1 in
  Alcotest.(check (list int)) "start order" [ 0; 3 ]
    (List.map Tgraph.Edge.ts (Slice.to_list slice))

let prop_adjacency_out_edges =
  (* random graphs: out_edges must return exactly the label+src matches *)
  QCheck.Test.make ~name:"adjacency out_edges complete" ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 60)
        (quad (int_bound 6) (int_bound 6) (int_bound 2) (int_bound 20)))
    (fun edges ->
      let g =
        Tgraph.Graph.of_edge_list
          (List.map (fun (s, d, l, t) -> (s, d, l, t, t + 3)) edges)
      in
      let adj = Adjacency.build g in
      let ok = ref true in
      for lbl = 0 to 2 do
        for src = 0 to 6 do
          let expected =
            Tgraph.Graph.fold_edges
              (fun acc e ->
                if Tgraph.Edge.lbl e = lbl && Tgraph.Edge.src e = src then
                  Tgraph.Edge.id e :: acc
                else acc)
              [] g
            |> List.sort compare
          in
          if ids (Adjacency.out_edges adj ~lbl ~src) <> expected then ok := false
        done
      done;
      !ok)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "triejoin"
    [
      ("slice", [ Alcotest.test_case "windows" `Quick test_slice ]);
      ( "grouping",
        [
          Alcotest.test_case "full array" `Quick test_grouping;
          Alcotest.test_case "window" `Quick test_grouping_window;
        ] );
      ( "leapfrog",
        [
          Alcotest.test_case "key_iter seek" `Quick test_key_iter_seek;
          Alcotest.test_case "three-way" `Quick test_leapfrog_basic;
          Alcotest.test_case "edge cases" `Quick test_leapfrog_edge_cases;
        ] );
      ( "adjacency",
        [
          Alcotest.test_case "lookups" `Quick test_adjacency_lookups;
          Alcotest.test_case "key sets" `Quick test_adjacency_keys;
          Alcotest.test_case "between start-sorted" `Quick test_adjacency_between_start_sorted;
        ] );
      qsuite "leapfrog-properties" [ prop_leapfrog_matches_sets ];
      qsuite "adjacency-properties" [ prop_adjacency_out_edges ];
    ]
