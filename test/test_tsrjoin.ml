(* End-to-end tests of the TSRJoin engine: TAI/ECI indexes, planner, and
   the full operator cross-checked against the naive oracle on the query
   pool and randomized graphs. *)

open Tcsq_core
open Semantics

let window a b = Temporal.Interval.make a b

(* ---------- TAI ---------- *)

let tai_graph () =
  Tgraph.Graph.of_edge_list
    [
      (0, 1, 0, 0, 5);
      (0, 1, 0, 3, 8);
      (0, 2, 0, 1, 2);
      (1, 2, 1, 4, 9);
      (2, 1, 0, 7, 7);
    ]

let test_tai_tsrs () =
  let tai = Tai.build (tai_graph ()) in
  let ids tsr = List.map Tgraph.Edge.id (Tsr.to_list tsr) in
  Alcotest.(check (list int)) "out(0, v0)" [ 0; 2; 1 ]
    (ids (Tai.tsr_out tai ~lbl:0 ~src:0));
  Alcotest.(check (list int)) "in(0, v1)" [ 0; 1; 4 ]
    (ids (Tai.tsr_in tai ~lbl:0 ~dst:1));
  Alcotest.(check (list int)) "between(0, v0, v1)" [ 0; 1 ]
    (ids (Tai.tsr_between tai ~lbl:0 ~src:0 ~dst:1));
  Alcotest.(check (list int)) "missing" [] (ids (Tai.tsr_out tai ~lbl:5 ~src:0));
  (* TSRs are start-sorted *)
  let tsr = Tai.tsr_out tai ~lbl:0 ~src:0 in
  let sorted = ref true in
  for i = 1 to Tsr.length tsr - 1 do
    if Tgraph.Edge.ts (Tsr.get tsr (i - 1)) > Tgraph.Edge.ts (Tsr.get tsr i) then
      sorted := false
  done;
  Alcotest.(check bool) "start-sorted" true !sorted

let test_tai_keys () =
  let tai = Tai.build (tai_graph ()) in
  Alcotest.(check (list int)) "sources(0)" [ 0; 2 ]
    (Array.to_list (Tai.sources tai ~lbl:0));
  Alcotest.(check (list int)) "destinations(0)" [ 1; 2 ]
    (Array.to_list (Tai.destinations tai ~lbl:0));
  Alcotest.(check (list int)) "dsts_of_src" [ 1; 2 ]
    (Array.to_list (Tai.dsts_of_src tai ~lbl:0 ~src:0));
  Alcotest.(check (list int)) "srcs_of_dst" [ 0; 2 ]
    (Array.to_list (Tai.srcs_of_dst tai ~lbl:0 ~dst:1))

let test_tai_eci () =
  let with_eci = Tai.build ~with_eci:true (tai_graph ()) in
  let without = Tai.build ~with_eci:false (tai_graph ()) in
  Alcotest.(check bool) "has eci" true (Tai.has_eci with_eci);
  Alcotest.(check bool) "no eci" false (Tai.has_eci without);
  Alcotest.(check bool) "eci adds storage" true
    (Tai.size_words with_eci > Tai.size_words without);
  Alcotest.(check int) "eci share" (Tai.size_words with_eci - Tai.size_words without)
    (Tai.eci_size_words with_eci);
  let tsr = Tai.tsr_out with_eci ~lbl:0 ~src:0 in
  Alcotest.(check bool) "coverage attached" true (Tsr.coverage tsr <> None);
  Alcotest.(check bool) "coverage absent" true
    (Tsr.coverage (Tai.tsr_out without ~lbl:0 ~src:0) = None);
  (* coverage of R(0, v0, ANY): intervals [0,5] [1,2] [3,8]: eC = 0 on
     [0,5] (edge 0 alive), then 3 on [6,8] (only [3,8] alive) *)
  (match Tsr.get_coverage_tuple tsr 4 with
  | Some tup ->
      Alcotest.(check int) "ec" 0 tup.Temporal.Coverage.ec;
      Alcotest.(check int) "ce" 5 tup.Temporal.Coverage.ce
  | None -> Alcotest.fail "coverage lookup failed");
  match Tsr.get_coverage_tuple tsr 6 with
  | Some tup -> Alcotest.(check int) "ec at 6" 3 tup.Temporal.Coverage.ec
  | None -> Alcotest.fail "coverage lookup failed at 6"

(* ---------- Plan ---------- *)

let test_plan_star_center_first () =
  (* On a graph where label-0/1/2 edges are plentiful, the 3-star plan
     must be a single TSRJoin step at the center. *)
  let g =
    Test_util.random_graph ~seed:1 ~n_vertices:8 ~n_edges:120 ~n_labels:3
      ~domain:50 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let q =
    Pattern.instantiate (Pattern.Star 3) ~labels:[| 0; 1; 2 |]
      ~window:(window 0 49)
  in
  let plan = Plan.build tai q in
  Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate plan));
  Alcotest.(check int) "one step" 1 (Array.length (Plan.steps plan));
  Alcotest.(check int) "pivot is center" 0 (Plan.steps plan).(0).Plan.pivot;
  Alcotest.(check bool) "root leapfrogs" true
    (Plan.steps plan).(0).Plan.produce_binding

let test_plan_validate_rejects () =
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 1, 2) ] ~window:(window 0 9)
  in
  (* pivot order starting at var 2, then 0 would leave var 0 unbound at
     its step... of_pivot_order guards with fallbacks, so instead check
     validate on a handcrafted broken plan via of_pivot_order soundness *)
  let plan = Plan.of_pivot_order q [ 1 ] in
  Alcotest.(check bool) "fallback covers all edges" true
    (Result.is_ok (Plan.validate plan));
  let covered =
    Array.fold_left
      (fun acc step -> acc + Array.length step.Plan.edges)
      0 (Plan.steps plan)
  in
  Alcotest.(check int) "both edges matched" 2 covered

let test_plan_chain_orders () =
  let g =
    Test_util.random_graph ~seed:2 ~n_vertices:8 ~n_edges:100 ~n_labels:4
      ~domain:50 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let q =
    Pattern.instantiate (Pattern.Chain 4) ~labels:[| 0; 1; 2; 3 |]
      ~window:(window 0 49)
  in
  let plan = Plan.build tai q in
  Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate plan));
  (* all steps after the first extend bound pivots *)
  Array.iteri
    (fun i step ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "step %d extends" i)
          false step.Plan.produce_binding)
    (Plan.steps plan)

(* ---------- TSRJoin vs oracle ---------- *)

let engine_configs =
  [
    ("basic", Tsrjoin.basic_config);
    ("opt-none", { Tsrjoin.default_config with mode = Tsrjoin.Optimized Lfto_opt.all_off });
    ("opt-all", Tsrjoin.default_config);
  ]

let check_engine_matches_oracle ~msg g q =
  let expected = Naive.evaluate g q in
  let tai = Tai.build g in
  List.iter
    (fun (name, config) ->
      let actual = Tsrjoin.evaluate ~config tai q in
      (* every produced match passes the verifier *)
      List.iter
        (fun m ->
          match Match_result.verify g q m with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s/%s: invalid match: %s" msg name e)
        actual;
      Test_util.check_same_results ~msg:(msg ^ "/" ^ name) expected actual)
    engine_configs

let test_engine_query_pool () =
  let g =
    Test_util.random_graph ~seed:11 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  List.iteri
    (fun i q -> check_engine_matches_oracle ~msg:(Printf.sprintf "pool query %d" i) g q)
    (Test_util.query_pool ~n_labels:3 ~window:(window 8 30))

let test_engine_narrow_window () =
  let g =
    Test_util.random_graph ~seed:12 ~n_vertices:5 ~n_edges:60 ~n_labels:2
      ~domain:40 ~max_len:12 ()
  in
  List.iteri
    (fun i q ->
      check_engine_matches_oracle ~msg:(Printf.sprintf "narrow %d" i) g q)
    (Test_util.query_pool ~n_labels:2 ~window:(window 20 21))

let test_engine_empty_graph_label () =
  (* query label that does not exist in the graph *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let q = Query.make ~n_vars:2 ~edges:[ (3, 0, 1) ] ~window:(window 0 9) in
  let tai = Tai.build g in
  Alcotest.(check int) "no matches" 0 (Tsrjoin.count tai q)

let test_engine_respects_limits () =
  let g =
    Test_util.random_graph ~seed:13 ~n_vertices:4 ~n_edges:60 ~n_labels:1
      ~domain:20 ~max_len:20 ()
  in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 19) in
  let stats =
    Run_stats.create ~limits:{ Run_stats.max_results = 5; max_intermediate = max_int } ()
  in
  (try ignore (Tsrjoin.count ~stats tai q) with Run_stats.Limit_exceeded _ -> ());
  Alcotest.(check bool) "stopped at limit" true (stats.Run_stats.results <= 6)

let test_engine_lifespan_full_intersection () =
  (* lifespans may extend beyond the query window (paper example:
     (e4, e8, e12) has lifespan [15,15] for window [10,20], but a pair
     overlapping on [5,15] keeps the full [5,15] even for window
     [10,20]) *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 5, 15); (0, 2, 1, 5, 18) ] in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 10 20)
  in
  let tai = Tai.build g in
  match Tsrjoin.evaluate tai q with
  | [ m ] ->
      Alcotest.(check int) "life start" 5 (Temporal.Interval.ts m.Match_result.life);
      Alcotest.(check int) "life end" 15 (Temporal.Interval.te m.Match_result.life)
  | ms -> Alcotest.failf "expected 1 match, got %d" (List.length ms)

let test_engine_intermediate_counted () =
  let g =
    Test_util.random_graph ~seed:14 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let q =
    Pattern.instantiate (Pattern.Chain 3) ~labels:[| 0; 1; 2 |] ~window:(window 0 39)
  in
  let stats = Run_stats.create () in
  let n = Tsrjoin.count ~stats tai q in
  Alcotest.(check bool) "intermediate >= results" true
    (stats.Run_stats.intermediate >= n);
  Alcotest.(check int) "results counted" n stats.Run_stats.results

(* ---------- randomized equivalence ---------- *)

let prop_engine_matches_oracle =
  QCheck.Test.make ~name:"TSRJoin = oracle on random graphs" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:50 ~n_labels:3
          ~domain:30 ~max_len:8 ()
      in
      let tai = Tai.build g in
      let queries = Test_util.query_pool ~n_labels:3 ~window:(window 5 22) in
      List.for_all
        (fun q ->
          let expected =
            Match_result.Result_set.of_list (Naive.evaluate g q)
          in
          List.for_all
            (fun (_, config) ->
              Match_result.Result_set.equal expected
                (Match_result.Result_set.of_list (Tsrjoin.evaluate ~config tai q)))
            engine_configs)
        queries)

let prop_engine_window_sweep =
  QCheck.Test.make ~name:"TSRJoin = oracle across windows" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 0 29))
    (fun (seed, ws) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:4 ~n_edges:40 ~n_labels:2
          ~domain:30 ~max_len:6 ()
      in
      let tai = Tai.build g in
      let q =
        Query.make ~n_vars:3
          ~edges:[ (0, 0, 1); (1, 1, 2) ]
          ~window:(window ws (ws + 5))
      in
      Match_result.Result_set.equal
        (Match_result.Result_set.of_list (Naive.evaluate g q))
        (Match_result.Result_set.of_list (Tsrjoin.evaluate tai q)))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "tsrjoin"
    [
      ( "tai",
        [
          Alcotest.test_case "tsr retrieval" `Quick test_tai_tsrs;
          Alcotest.test_case "key sets" `Quick test_tai_keys;
          Alcotest.test_case "eci" `Quick test_tai_eci;
        ] );
      ( "plan",
        [
          Alcotest.test_case "star center first" `Quick test_plan_star_center_first;
          Alcotest.test_case "pivot-order fallback" `Quick test_plan_validate_rejects;
          Alcotest.test_case "chain extends bound pivots" `Quick test_plan_chain_orders;
        ] );
      ( "engine",
        [
          Alcotest.test_case "query pool vs oracle" `Quick test_engine_query_pool;
          Alcotest.test_case "narrow window vs oracle" `Quick test_engine_narrow_window;
          Alcotest.test_case "unknown label" `Quick test_engine_empty_graph_label;
          Alcotest.test_case "limits respected" `Quick test_engine_respects_limits;
          Alcotest.test_case "full-intersection lifespan" `Quick
            test_engine_lifespan_full_intersection;
          Alcotest.test_case "intermediate counters" `Quick test_engine_intermediate_counted;
        ] );
      qsuite "properties" [ prop_engine_matches_oracle; prop_engine_window_sweep ];
    ]
