(* Shared helpers for the test suites: delegates input generation to the
   Testkit library and adds Alcotest-flavoured assertions. *)

open Semantics

let random_graph = Testkit.random_graph
let query_pool = Testkit.query_pool
let result_set_of_list = Match_result.Result_set.of_list

let check_same_results ~msg expected actual =
  let expected = result_set_of_list expected in
  let actual = result_set_of_list actual in
  match Match_result.Result_set.diff_summary ~expected ~actual with
  | None -> ()
  | Some diff -> Alcotest.failf "%s: %s" msg diff
