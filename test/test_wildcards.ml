(* Dedicated wildcard-label coverage: the any-label constraint composed
   with every engine, duration floors, multi-window evaluation, parallel
   execution and top-k. *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b
let any = Query.any_label

let graph () =
  Test_util.random_graph ~seed:131 ~n_vertices:6 ~n_edges:90 ~n_labels:3
    ~domain:40 ~max_len:10 ()

let wildcard_queries w =
  [
    (* single wildcard edge *)
    Query.make ~n_vars:2 ~edges:[ (any, 0, 1) ] ~window:w;
    (* wildcard star mixed with a labeled edge *)
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (any, 0, 2) ] ~window:w;
    (* fully unlabeled triangle (durable-pattern setting) *)
    Query.make ~n_vars:3 ~edges:[ (any, 0, 1); (any, 1, 2); (any, 2, 0) ] ~window:w;
    (* wildcard with bound endpoints on both sides (between-TSR path) *)
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 1, 2); (any, 0, 1) ] ~window:w;
    (* wildcard self loop *)
    Query.make ~n_vars:2 ~edges:[ (any, 0, 0); (0, 0, 1) ] ~window:w;
    (* wildcard chain *)
    Query.make ~n_vars:4 ~edges:[ (any, 0, 1); (any, 1, 2); (any, 2, 3) ] ~window:w;
  ]

let test_all_engines () =
  let g = graph () in
  let engine = Workload.Engine.prepare g in
  List.iteri
    (fun qi q ->
      let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
      Alcotest.(check bool)
        (Printf.sprintf "query %d has matches" qi)
        true
        (qi > 3 || Match_result.Result_set.cardinality expected > 0);
      Array.iter
        (fun m ->
          let actual =
            Match_result.Result_set.of_list (Workload.Engine.evaluate engine m q)
          in
          match Match_result.Result_set.diff_summary ~expected ~actual with
          | None -> ()
          | Some diff ->
              Alcotest.failf "query %d, %s: %s" qi
                (Workload.Engine.method_name m)
                diff)
        Workload.Engine.all_methods)
    (wildcard_queries (window 5 30))

let test_wildcard_equals_label_union () =
  (* a single wildcard edge matches exactly the union over per-label
     queries *)
  let g = graph () in
  let tai = Tai.build g in
  let w = window 5 30 in
  let wild =
    Tsrjoin.evaluate tai (Query.make ~n_vars:2 ~edges:[ (any, 0, 1) ] ~window:w)
  in
  let by_label =
    List.concat_map
      (fun lbl ->
        Tsrjoin.evaluate tai
          (Query.make ~n_vars:2 ~edges:[ (lbl, 0, 1) ] ~window:w))
      [ 0; 1; 2 ]
  in
  Test_util.check_same_results ~msg:"wildcard = union over labels" by_label wild

let test_wildcard_durable () =
  let g = graph () in
  let engine = Workload.Engine.prepare g in
  let q =
    Query.with_min_duration
      (Query.make ~n_vars:3 ~edges:[ (any, 0, 1); (any, 0, 2) ] ~window:(window 5 30))
      4
  in
  let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
  Array.iter
    (fun m ->
      Alcotest.(check bool)
        (Workload.Engine.method_name m)
        true
        (Match_result.Result_set.equal expected
           (Match_result.Result_set.of_list (Workload.Engine.evaluate engine m q))))
    Workload.Engine.all_methods

let test_wildcard_parallel_and_topk () =
  let g = graph () in
  let tai = Tai.build g in
  let q =
    Query.make ~n_vars:3 ~edges:[ (any, 0, 1); (any, 1, 2) ] ~window:(window 5 30)
  in
  let sequential = Tsrjoin.evaluate tai q in
  Test_util.check_same_results ~msg:"parallel wildcard" sequential
    (Exec.Parallel.evaluate ~domains:3 tai q);
  let top = Durable.top_k tai q ~k:5 in
  Alcotest.(check int) "top-k size" (min 5 (List.length sequential)) (List.length top)

let test_wildcard_multi_window () =
  let g = graph () in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (any, 0, 1) ] ~window:(window 0 0) in
  let windows = [ window 0 9; window 10 25; window 5 35 ] in
  let shared = Multi_window.evaluate tai q ~windows in
  List.iteri
    (fun i w ->
      Test_util.check_same_results
        ~msg:(Printf.sprintf "window %d" i)
        (Tsrjoin.evaluate tai (Query.with_window q w))
        shared.(i))
    windows

let prop_wildcard_engines_agree =
  QCheck.Test.make ~name:"wildcard queries agree across engines" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:45 ~n_labels:3
          ~domain:25 ~max_len:8 ()
      in
      let engine = Workload.Engine.prepare g in
      List.for_all
        (fun q ->
          let expected = Match_result.Result_set.of_list (Naive.evaluate g q) in
          Array.for_all
            (fun m ->
              Match_result.Result_set.equal expected
                (Match_result.Result_set.of_list
                   (Workload.Engine.evaluate engine m q)))
            Workload.Engine.all_methods)
        (wildcard_queries (window 4 18)))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "wildcards"
    [
      ( "engines",
        [
          Alcotest.test_case "all engines vs oracle" `Quick test_all_engines;
          Alcotest.test_case "wildcard = label union" `Quick
            test_wildcard_equals_label_union;
          Alcotest.test_case "durable wildcard" `Quick test_wildcard_durable;
          Alcotest.test_case "parallel + top-k" `Quick test_wildcard_parallel_and_topk;
          Alcotest.test_case "multi-window" `Quick test_wildcard_multi_window;
        ] );
      qsuite "properties" [ prop_wildcard_engines_agree ];
    ]
